// AppSAT: approximate attack; settles early on point-function schemes.
#include <gtest/gtest.h>

#include "attacks/appsat.h"
#include "attacks/oracle.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

TEST(AppSat, SettlesEarlyOnSarlock) {
  // SARLock with 14 key bits: exact SAT attack needs ~2^14 iterations;
  // AppSAT must settle on an approximate key after a handful, because any
  // surviving key errs on ~2^-14 of inputs.
  const Netlist original = netlist::make_circuit("c432", 111);
  lock::SarLockConfig config;
  config.num_keys = 14;
  const LockedCircuit locked = lock::sarlock_lock(original, config);
  const Oracle oracle(original);
  AppSatOptions options;
  options.base.timeout_s = 60.0;
  options.error_threshold = 0.01;
  const AppSatResult result = AppSat(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_TRUE(result.approximate);
  EXPECT_LT(result.iterations, 200u);
  EXPECT_LE(result.estimated_error, 0.01);
  // The approximate key is *nearly* correct on random patterns.
  const double err = core::error_rate(original, locked.netlist, result.key,
                                      16, 5);
  EXPECT_LT(err, 0.02);
}

TEST(AppSat, ExactOnEasySchemes) {
  const Netlist original = netlist::make_circuit("c499", 112);
  lock::RllConfig config;
  config.num_keys = 16;
  const LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  AppSatOptions options;
  options.base.timeout_s = 60.0;
  const AppSatResult result = AppSat(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  if (result.approximate) {
    // Legitimate AppSAT outcome: settled on a key below the error
    // threshold. Hold it to that promise on fresh patterns.
    const double err =
        core::error_rate(original, locked.netlist, result.key, 32, 17);
    EXPECT_LT(err, 4 * options.error_threshold);
  } else {
    EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                     1, /*sat=*/true));
  }
}

TEST(AppSat, FullLockResistsApproximation) {
  // §2 property (3): Full-Lock is "not susceptible to approximate attacks" —
  // no early settlement, because partial keys still corrupt heavily. With a
  // tight budget the attack times out rather than settling.
  const Netlist original = netlist::make_circuit("c432", 113);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Oracle oracle(original);
  AppSatOptions options;
  options.base.timeout_s = 1.5;
  options.error_threshold = 0.005;
  const AppSatResult result = AppSat(options).run(locked, oracle);
  // Acceptable outcomes: budget exhausted without settling, an exact
  // finish, or an approximate settlement that genuinely meets the error
  // bar. What must NOT happen is settling on a badly wrong key.
  if (result.status == AttackStatus::kSuccess) {
    const double err =
        core::error_rate(original, locked.netlist, result.key, 32, 19);
    EXPECT_LT(err, 4 * options.error_threshold);
  } else {
    EXPECT_EQ(result.status, AttackStatus::kTimeout);
  }
  // Truncated or not, the key is sized to the key width for consumers that
  // index it unconditionally.
  EXPECT_EQ(result.key.size(), locked.netlist.num_keys());
}

}  // namespace
}  // namespace fl::attacks
