// Tseytin encoder: per-gate clause shapes (Table 1), constant folding,
// equisatisfiability against simulation.
#include <gtest/gtest.h>

#include <random>

#include "cnf/tseytin.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::cnf {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

// Builds a 2-input single-gate circuit and checks the CNF agrees with
// simulation on all input combinations via SAT queries.
void check_gate_semantics(GateType type, int arity) {
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < arity; ++i) ins.push_back(n.add_input("i"));
  const GateId g = n.add_gate(type, ins, "g");
  n.mark_output(g, "y");

  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fold_constants = false;  // exercise the definitional encoding
  const EncodedCircuit enc = encode(n, sink, options);
  ASSERT_FALSE(enc.outputs[0].is_const());

  for (int combo = 0; combo < (1 << arity); ++combo) {
    std::vector<bool> bits(arity);
    std::vector<sat::Lit> assumptions;
    for (int i = 0; i < arity; ++i) {
      bits[i] = ((combo >> i) & 1) != 0;
      assumptions.push_back(sat::Lit(enc.input_vars[i], !bits[i]));
    }
    const bool expected = netlist::eval_once(n, bits, {})[0];
    // Output forced to the expected value: SAT; to the opposite: UNSAT.
    auto with_out = assumptions;
    with_out.push_back(expected ? enc.outputs[0].lit : ~enc.outputs[0].lit);
    EXPECT_EQ(solver.solve(with_out), sat::LBool::kTrue)
        << to_string(type) << " combo " << combo;
    with_out.back() = ~with_out.back();
    EXPECT_EQ(solver.solve(with_out), sat::LBool::kFalse)
        << to_string(type) << " combo " << combo;
  }
}

TEST(Tseytin, GateSemantics2Input) {
  for (const GateType t :
       {GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
        GateType::kXor, GateType::kXnor}) {
    check_gate_semantics(t, 2);
  }
}

TEST(Tseytin, GateSemanticsUnary) {
  check_gate_semantics(GateType::kBuf, 1);
  check_gate_semantics(GateType::kNot, 1);
}

TEST(Tseytin, GateSemanticsMux) { check_gate_semantics(GateType::kMux, 3); }

TEST(Tseytin, GateSemanticsNary) {
  check_gate_semantics(GateType::kAnd, 4);
  check_gate_semantics(GateType::kNor, 3);
  check_gate_semantics(GateType::kXor, 5);
  check_gate_semantics(GateType::kXnor, 3);
}

// Table 1 clause counts: AND/OR families 3 clauses, XOR/XNOR/MUX 4.
TEST(Tseytin, Table1ClauseCounts) {
  const auto count = [](GateType type, int arity) {
    Netlist n;
    std::vector<GateId> ins;
    for (int i = 0; i < arity; ++i) ins.push_back(n.add_input("i"));
    const GateId g = n.add_gate(type, ins, "g");
    n.mark_output(g, "y");
    const sat::Cnf cnf = to_cnf(n);
    return cnf.clauses.size();
  };
  EXPECT_EQ(count(GateType::kAnd, 2), 3u);
  EXPECT_EQ(count(GateType::kNand, 2), 3u);
  EXPECT_EQ(count(GateType::kOr, 2), 3u);
  EXPECT_EQ(count(GateType::kNor, 2), 3u);
  EXPECT_EQ(count(GateType::kXor, 2), 4u);
  EXPECT_EQ(count(GateType::kXnor, 2), 4u);
  EXPECT_EQ(count(GateType::kMux, 3), 4u);
}

TEST(Tseytin, BufAndNotFoldAway) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b1 = n.add_gate(GateType::kBuf, {a});
  const GateId n1 = n.add_gate(GateType::kNot, {b1});
  const GateId n2 = n.add_gate(GateType::kNot, {n1});
  n.mark_output(n2, "y");
  const sat::Cnf cnf = to_cnf(n);
  EXPECT_EQ(cnf.clauses.size(), 0u);  // pure wiring: nothing to encode
  EXPECT_EQ(cnf.num_vars, 1);
}

TEST(Tseytin, ConstantsFoldThroughLogic) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId c1 = n.add_const(true);
  const GateId c0 = n.add_const(false);
  const GateId g1 = n.add_gate(GateType::kAnd, {a, c1});   // = a
  const GateId g2 = n.add_gate(GateType::kOr, {g1, c0});   // = a
  const GateId g3 = n.add_gate(GateType::kXor, {g2, c1});  // = ~a
  const GateId g4 = n.add_gate(GateType::kMux, {c0, g3, a});  // sel=0 -> g3
  n.mark_output(g4, "y");
  const sat::Cnf cnf = to_cnf(n);
  EXPECT_EQ(cnf.clauses.size(), 0u);
  // And semantics: output is ~a.
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit enc = encode(n, sink);
  ASSERT_FALSE(enc.outputs[0].is_const());
  EXPECT_EQ(enc.outputs[0].lit, ~sat::pos(enc.input_vars[0]));
}

TEST(Tseytin, FixedInputsFoldWholeCircuit) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fixed_inputs = {true, false, true, false, true};
  const EncodedCircuit enc = encode(c17, sink, options);
  // Key-free circuit with fixed inputs folds to constants.
  for (const NetLit& o : enc.outputs) EXPECT_TRUE(o.is_const());
  const auto expected = netlist::eval_once(
      c17, std::vector<bool>{true, false, true, false, true}, {});
  EXPECT_EQ(enc.outputs[0].const_value(), expected[0]);
  EXPECT_EQ(enc.outputs[1].const_value(), expected[1]);
}

TEST(Tseytin, SharedKeyVarsReused) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("k");
  const GateId g = n.add_gate(GateType::kXor, {a, k});
  n.mark_output(g, "y");
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(n, sink);
  EncodeOptions options;
  options.shared_key_vars = first.key_vars;
  const EncodedCircuit second = encode(n, sink, options);
  EXPECT_EQ(first.key_vars, second.key_vars);
}

TEST(Tseytin, SharedInputVarsReused) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(c17, sink);
  EncodeOptions options;
  options.shared_input_vars = first.input_vars;
  const EncodedCircuit second = encode(c17, sink, options);
  EXPECT_EQ(first.input_vars, second.input_vars);
  // The second copy allocates no input variables of its own — that is the
  // point of sharing over "fresh vars + 2n equality clauses".
  EXPECT_EQ(second.vars_added + c17.num_inputs(), first.vars_added);
  EXPECT_EQ(second.clauses_added, first.clauses_added);
}

TEST(Tseytin, SharedInputVarsValidated) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(c17, sink);
  {
    EncodeOptions options;  // wrong width
    const std::vector<sat::Var> short_vec(first.input_vars.begin(),
                                          first.input_vars.begin() + 2);
    options.shared_input_vars = short_vec;
    EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
  }
  {
    EncodeOptions options;  // cannot both share and fix the inputs
    options.shared_input_vars = first.input_vars;
    options.fixed_inputs = {true, false, true, false, true};
    EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
  }
}

TEST(Tseytin, CyclicNetlistEncodesWithoutFolding) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g1, {a, g1});
  n.mark_output(g1, "y");
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit enc = encode(n, sink);
  ASSERT_FALSE(enc.outputs[0].is_const());
  // CNF of g = a | g: a=1 forces g=1; a=0 leaves g free (latching cycle).
  const sat::Lit a_true[] = {sat::pos(enc.input_vars[0]),
                             ~enc.outputs[0].lit};
  EXPECT_EQ(solver.solve(a_true), sat::LBool::kFalse);
}

// Equisatisfiability property over random circuits: for random inputs, the
// CNF restricted to those inputs is satisfiable exactly with the simulated
// output values.
TEST(Tseytin, RandomCircuitsAgreeWithSimulation) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    netlist::GeneratorConfig config;
    config.num_inputs = 6;
    config.num_outputs = 3;
    config.num_gates = 40;
    config.seed = rng();
    const Netlist n = netlist::generate_circuit(config);
    sat::Solver solver;
    SolverSink sink(solver);
    const EncodedCircuit enc = encode(n, sink);
    for (int combo = 0; combo < 8; ++combo) {
      std::vector<bool> bits(6);
      std::vector<sat::Lit> assumptions;
      for (int i = 0; i < 6; ++i) {
        bits[i] = ((rng() >> i) & 1) != 0;
        assumptions.push_back(sat::Lit(enc.input_vars[i], !bits[i]));
      }
      const auto expected = netlist::eval_once(n, bits, {});
      for (std::size_t o = 0; o < expected.size(); ++o) {
        if (enc.outputs[o].is_const()) {
          EXPECT_EQ(enc.outputs[o].const_value(), expected[o]);
          continue;
        }
        assumptions.push_back(expected[o] ? enc.outputs[o].lit
                                          : ~enc.outputs[o].lit);
      }
      EXPECT_EQ(solver.solve(assumptions), sat::LBool::kTrue);
    }
  }
}

TEST(Tseytin, SizeMismatchesThrow) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fixed_inputs = {true};  // wrong width
  EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
}

TEST(EmitHelpers, AndOrAssert) {
  sat::Cnf cnf;
  CnfSink sink(cnf);
  const NetLit t = NetLit::constant(true);
  const NetLit f = NetLit::constant(false);
  EXPECT_TRUE(emit_and(sink, {t, t}).const_value());
  EXPECT_FALSE(emit_and(sink, {t, f}).const_value());
  EXPECT_TRUE(emit_or(sink, {f, t}).const_value());
  EXPECT_FALSE(emit_or(sink, {}).const_value());
  assert_true(sink, t);  // no-op
  EXPECT_TRUE(cnf.clauses.empty());
  assert_true(sink, f);  // empty clause = UNSAT marker
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_TRUE(cnf.clauses[0].empty());
}

}  // namespace
}  // namespace fl::cnf
