// Tseytin encoder: per-gate clause shapes (Table 1), constant folding,
// equisatisfiability against simulation.
#include <gtest/gtest.h>

#include <random>

#include "cnf/tseytin.h"
#include "core/full_lock.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::cnf {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

// Builds a 2-input single-gate circuit and checks the CNF agrees with
// simulation on all input combinations via SAT queries.
void check_gate_semantics(GateType type, int arity) {
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < arity; ++i) ins.push_back(n.add_input("i"));
  const GateId g = n.add_gate(type, ins, "g");
  n.mark_output(g, "y");

  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fold_constants = false;  // exercise the definitional encoding
  const EncodedCircuit enc = encode(n, sink, options);
  ASSERT_FALSE(enc.outputs[0].is_const());

  for (int combo = 0; combo < (1 << arity); ++combo) {
    std::vector<bool> bits(arity);
    std::vector<sat::Lit> assumptions;
    for (int i = 0; i < arity; ++i) {
      bits[i] = ((combo >> i) & 1) != 0;
      assumptions.push_back(sat::Lit(enc.input_vars[i], !bits[i]));
    }
    const bool expected = netlist::eval_once(n, bits, {})[0];
    // Output forced to the expected value: SAT; to the opposite: UNSAT.
    auto with_out = assumptions;
    with_out.push_back(expected ? enc.outputs[0].lit : ~enc.outputs[0].lit);
    EXPECT_EQ(solver.solve(with_out), sat::LBool::kTrue)
        << to_string(type) << " combo " << combo;
    with_out.back() = ~with_out.back();
    EXPECT_EQ(solver.solve(with_out), sat::LBool::kFalse)
        << to_string(type) << " combo " << combo;
  }
}

TEST(Tseytin, GateSemantics2Input) {
  for (const GateType t :
       {GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
        GateType::kXor, GateType::kXnor}) {
    check_gate_semantics(t, 2);
  }
}

TEST(Tseytin, GateSemanticsUnary) {
  check_gate_semantics(GateType::kBuf, 1);
  check_gate_semantics(GateType::kNot, 1);
}

TEST(Tseytin, GateSemanticsMux) { check_gate_semantics(GateType::kMux, 3); }

TEST(Tseytin, GateSemanticsNary) {
  check_gate_semantics(GateType::kAnd, 4);
  check_gate_semantics(GateType::kNor, 3);
  check_gate_semantics(GateType::kXor, 5);
  check_gate_semantics(GateType::kXnor, 3);
}

// Table 1 clause counts: AND/OR families 3 clauses, XOR/XNOR/MUX 4.
TEST(Tseytin, Table1ClauseCounts) {
  const auto count = [](GateType type, int arity) {
    Netlist n;
    std::vector<GateId> ins;
    for (int i = 0; i < arity; ++i) ins.push_back(n.add_input("i"));
    const GateId g = n.add_gate(type, ins, "g");
    n.mark_output(g, "y");
    const sat::Cnf cnf = to_cnf(n);
    return cnf.clauses.size();
  };
  EXPECT_EQ(count(GateType::kAnd, 2), 3u);
  EXPECT_EQ(count(GateType::kNand, 2), 3u);
  EXPECT_EQ(count(GateType::kOr, 2), 3u);
  EXPECT_EQ(count(GateType::kNor, 2), 3u);
  EXPECT_EQ(count(GateType::kXor, 2), 4u);
  EXPECT_EQ(count(GateType::kXnor, 2), 4u);
  EXPECT_EQ(count(GateType::kMux, 3), 4u);
}

TEST(Tseytin, BufAndNotFoldAway) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b1 = n.add_gate(GateType::kBuf, {a});
  const GateId n1 = n.add_gate(GateType::kNot, {b1});
  const GateId n2 = n.add_gate(GateType::kNot, {n1});
  n.mark_output(n2, "y");
  const sat::Cnf cnf = to_cnf(n);
  EXPECT_EQ(cnf.clauses.size(), 0u);  // pure wiring: nothing to encode
  EXPECT_EQ(cnf.num_vars, 1);
}

TEST(Tseytin, ConstantsFoldThroughLogic) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId c1 = n.add_const(true);
  const GateId c0 = n.add_const(false);
  const GateId g1 = n.add_gate(GateType::kAnd, {a, c1});   // = a
  const GateId g2 = n.add_gate(GateType::kOr, {g1, c0});   // = a
  const GateId g3 = n.add_gate(GateType::kXor, {g2, c1});  // = ~a
  const GateId g4 = n.add_gate(GateType::kMux, {c0, g3, a});  // sel=0 -> g3
  n.mark_output(g4, "y");
  const sat::Cnf cnf = to_cnf(n);
  EXPECT_EQ(cnf.clauses.size(), 0u);
  // And semantics: output is ~a.
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit enc = encode(n, sink);
  ASSERT_FALSE(enc.outputs[0].is_const());
  EXPECT_EQ(enc.outputs[0].lit, ~sat::pos(enc.input_vars[0]));
}

TEST(Tseytin, FixedInputsFoldWholeCircuit) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fixed_inputs = {true, false, true, false, true};
  const EncodedCircuit enc = encode(c17, sink, options);
  // Key-free circuit with fixed inputs folds to constants.
  for (const NetLit& o : enc.outputs) EXPECT_TRUE(o.is_const());
  const auto expected = netlist::eval_once(
      c17, std::vector<bool>{true, false, true, false, true}, {});
  EXPECT_EQ(enc.outputs[0].const_value(), expected[0]);
  EXPECT_EQ(enc.outputs[1].const_value(), expected[1]);
}

TEST(Tseytin, SharedKeyVarsReused) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("k");
  const GateId g = n.add_gate(GateType::kXor, {a, k});
  n.mark_output(g, "y");
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(n, sink);
  EncodeOptions options;
  options.shared_key_vars = first.key_vars;
  const EncodedCircuit second = encode(n, sink, options);
  EXPECT_EQ(first.key_vars, second.key_vars);
}

TEST(Tseytin, SharedInputVarsReused) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(c17, sink);
  EncodeOptions options;
  options.shared_input_vars = first.input_vars;
  const EncodedCircuit second = encode(c17, sink, options);
  EXPECT_EQ(first.input_vars, second.input_vars);
  // The second copy allocates no input variables of its own — that is the
  // point of sharing over "fresh vars + 2n equality clauses".
  EXPECT_EQ(second.vars_added + c17.num_inputs(), first.vars_added);
  EXPECT_EQ(second.clauses_added, first.clauses_added);
}

TEST(Tseytin, SharedInputVarsValidated) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit first = encode(c17, sink);
  {
    EncodeOptions options;  // wrong width
    const std::vector<sat::Var> short_vec(first.input_vars.begin(),
                                          first.input_vars.begin() + 2);
    options.shared_input_vars = short_vec;
    EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
  }
  {
    EncodeOptions options;  // cannot both share and fix the inputs
    options.shared_input_vars = first.input_vars;
    options.fixed_inputs = {true, false, true, false, true};
    EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
  }
}

TEST(Tseytin, CyclicNetlistEncodesWithoutFolding) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g1, {a, g1});
  n.mark_output(g1, "y");
  sat::Solver solver;
  SolverSink sink(solver);
  const EncodedCircuit enc = encode(n, sink);
  ASSERT_FALSE(enc.outputs[0].is_const());
  // CNF of g = a | g: a=1 forces g=1; a=0 leaves g free (latching cycle).
  const sat::Lit a_true[] = {sat::pos(enc.input_vars[0]),
                             ~enc.outputs[0].lit};
  EXPECT_EQ(solver.solve(a_true), sat::LBool::kFalse);
}

// Equisatisfiability property over random circuits: for random inputs, the
// CNF restricted to those inputs is satisfiable exactly with the simulated
// output values.
TEST(Tseytin, RandomCircuitsAgreeWithSimulation) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    netlist::GeneratorConfig config;
    config.num_inputs = 6;
    config.num_outputs = 3;
    config.num_gates = 40;
    config.seed = rng();
    const Netlist n = netlist::generate_circuit(config);
    sat::Solver solver;
    SolverSink sink(solver);
    const EncodedCircuit enc = encode(n, sink);
    for (int combo = 0; combo < 8; ++combo) {
      std::vector<bool> bits(6);
      std::vector<sat::Lit> assumptions;
      for (int i = 0; i < 6; ++i) {
        bits[i] = ((rng() >> i) & 1) != 0;
        assumptions.push_back(sat::Lit(enc.input_vars[i], !bits[i]));
      }
      const auto expected = netlist::eval_once(n, bits, {});
      for (std::size_t o = 0; o < expected.size(); ++o) {
        if (enc.outputs[o].is_const()) {
          EXPECT_EQ(enc.outputs[o].const_value(), expected[o]);
          continue;
        }
        assumptions.push_back(expected[o] ? enc.outputs[o].lit
                                          : ~enc.outputs[o].lit);
      }
      EXPECT_EQ(solver.solve(assumptions), sat::LBool::kTrue);
    }
  }
}

TEST(Tseytin, SizeMismatchesThrow) {
  const Netlist c17 = netlist::make_c17();
  sat::Solver solver;
  SolverSink sink(solver);
  EncodeOptions options;
  options.fixed_inputs = {true};  // wrong width
  EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);
}

TEST(EmitHelpers, AndOrAssert) {
  sat::Cnf cnf;
  CnfSink sink(cnf);
  const NetLit t = NetLit::constant(true);
  const NetLit f = NetLit::constant(false);
  EXPECT_TRUE(emit_and(sink, {t, t}).const_value());
  EXPECT_FALSE(emit_and(sink, {t, f}).const_value());
  EXPECT_TRUE(emit_or(sink, {f, t}).const_value());
  EXPECT_FALSE(emit_or(sink, {}).const_value());
  assert_true(sink, t);  // no-op
  EXPECT_TRUE(cnf.clauses.empty());
  assert_true(sink, f);  // empty clause = UNSAT marker
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_TRUE(cnf.clauses[0].empty());
}

TEST(Tseytin, PruneDeadLogicDropsUnreachableClauses) {
  // A symbolic chain whose only reader is masked by a constant never
  // reaches an output pin; pruning must skip its clauses without touching
  // the live key-to-output path.
  Netlist n;
  const GateId x = n.add_input("x");
  const GateId k = n.add_key("k");
  const GateId y = n.add_gate(GateType::kXor, {x, k});
  n.mark_output(y, "y");
  const GateId zero = n.add_const(false);
  GateId chain = x;
  for (int i = 0; i < 8; ++i) {
    chain = n.add_gate(GateType::kNand, {chain, k});
  }
  const GateId dead = n.add_gate(GateType::kAnd, {chain, zero});
  n.mark_output(dead, "z");

  EncodeOptions options;
  options.fixed_inputs = {true};

  sat::Cnf plain_cnf;
  CnfSink plain_sink(plain_cnf);
  const EncodedCircuit plain = encode(n, plain_sink, options);

  options.prune_dead_logic = true;
  sat::Cnf pruned_cnf;
  CnfSink pruned_sink(pruned_cnf);
  const EncodedCircuit pruned = encode(n, pruned_sink, options);

  // The chain NANDs emit clauses without pruning and vanish with it; the
  // live output is x ^ k = ~k either way (pure folding, zero clauses).
  EXPECT_GT(plain_cnf.clauses.size(), pruned_cnf.clauses.size());
  EXPECT_TRUE(pruned_cnf.clauses.empty());
  ASSERT_FALSE(pruned.outputs[0].is_const());
  EXPECT_EQ(pruned.outputs[0].lit, ~sat::pos(pruned.key_vars[0]));
  // Output constness and constant values are identical across modes.
  ASSERT_EQ(plain.outputs.size(), pruned.outputs.size());
  for (std::size_t o = 0; o < plain.outputs.size(); ++o) {
    ASSERT_EQ(plain.outputs[o].is_const(), pruned.outputs[o].is_const());
    if (plain.outputs[o].is_const()) {
      EXPECT_EQ(plain.outputs[o].const_value(), pruned.outputs[o].const_value());
    }
  }
  ASSERT_TRUE(pruned.outputs[1].is_const());
  EXPECT_FALSE(pruned.outputs[1].const_value());
}

TEST(Tseytin, PruneDeadLogicMatchesUnprunedOnLockedCircuits) {
  // Differential fuzz over locked circuits with fixed inputs (the per-DIP
  // constraint shape): with and without pruning, the encoded outputs are
  // the same function of the key — checked against direct simulation for
  // sampled keys.
  std::mt19937_64 rng(4242);
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    netlist::GeneratorConfig config;
    config.num_inputs = 8;
    config.num_outputs = 4;
    config.num_gates = 60;
    config.seed = 100 + trial;
    const Netlist base = netlist::generate_circuit(config);
    core::FullLockConfig lock_config = core::FullLockConfig::with_plrs({4});
    lock_config.seed = trial + 1;
    const core::LockedCircuit locked = core::full_lock(base, lock_config);
    const Netlist& net = locked.netlist;
    if (net.is_cyclic()) continue;

    std::vector<bool> pattern(net.num_inputs());
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = rng() & 1;
    EncodeOptions options;
    options.fixed_inputs = pattern;

    sat::Solver plain_solver;
    SolverSink plain_sink(plain_solver);
    const EncodedCircuit plain = encode(net, plain_sink, options);

    options.prune_dead_logic = true;
    sat::Solver pruned_solver;
    SolverSink pruned_sink(pruned_solver);
    const EncodedCircuit pruned = encode(net, pruned_sink, options);

    // Folding decisions are identical, so constness matches per output.
    for (std::size_t o = 0; o < plain.outputs.size(); ++o) {
      ASSERT_EQ(plain.outputs[o].is_const(), pruned.outputs[o].is_const());
      if (plain.outputs[o].is_const()) {
        EXPECT_EQ(plain.outputs[o].const_value(),
                  pruned.outputs[o].const_value());
      }
    }

    for (int sample = 0; sample < 12; ++sample) {
      std::vector<bool> key(net.num_keys());
      if (sample == 0) {
        key = locked.correct_key;
      } else {
        for (std::size_t i = 0; i < key.size(); ++i) key[i] = rng() & 1;
      }
      const std::vector<bool> expected = netlist::eval_once(net, pattern, key);
      std::vector<sat::Lit> plain_assume, pruned_assume;
      for (std::size_t i = 0; i < key.size(); ++i) {
        plain_assume.push_back(sat::Lit(plain.key_vars[i], !key[i]));
        pruned_assume.push_back(sat::Lit(pruned.key_vars[i], !key[i]));
      }
      ASSERT_EQ(plain_solver.solve(plain_assume), sat::LBool::kTrue);
      ASSERT_EQ(pruned_solver.solve(pruned_assume), sat::LBool::kTrue);
      for (std::size_t o = 0; o < expected.size(); ++o) {
        const bool got_plain =
            plain.outputs[o].is_const()
                ? plain.outputs[o].const_value()
                : plain_solver.value_of(plain.outputs[o].lit.var()) !=
                      plain.outputs[o].lit.negated();
        const bool got_pruned =
            pruned.outputs[o].is_const()
                ? pruned.outputs[o].const_value()
                : pruned_solver.value_of(pruned.outputs[o].lit.var()) !=
                      pruned.outputs[o].lit.negated();
        EXPECT_EQ(got_plain, expected[o]) << "trial " << trial;
        EXPECT_EQ(got_pruned, expected[o]) << "trial " << trial;
      }
    }
  }
}

TEST(Tseytin, PruneDeadLogicPreconditionsChecked) {
  const Netlist c17 = netlist::make_c17();
  sat::Cnf cnf;
  CnfSink sink(cnf);
  EncodeOptions options;
  options.prune_dead_logic = true;
  options.fold_constants = false;  // shadow pass needs folding
  EXPECT_THROW(encode(c17, sink, options), std::invalid_argument);

  Netlist cyclic;
  const GateId a = cyclic.add_input("a");
  const GateId g1 = cyclic.add_gate(GateType::kOr, {a, a});
  cyclic.set_fanin(g1, {a, g1});
  cyclic.mark_output(g1, "y");
  EncodeOptions cyclic_options;
  cyclic_options.prune_dead_logic = true;
  EXPECT_THROW(encode(cyclic, sink, cyclic_options), std::invalid_argument);
}

}  // namespace
}  // namespace fl::cnf
