// SFLL-HD: stripped function + Hamming-distance restore unit, and the
// FALL-style structural/functional attack that defeats it. Removal alone
// (stripping the restore unit) leaves the attacker with the *stripped*
// function, which errs on the whole h-shell around K* — SFLL's
// removal-resilience claim — while FALL closes the loop by solving for K*
// from the stripped function's error patterns.
#include <gtest/gtest.h>

#include "attacks/fall.h"
#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/verify.h"
#include "locking/scheme.h"
#include "locking/sfll_hd.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

LockedCircuit lock_sfll(const Netlist& original, int keys, int hd,
                        std::uint64_t seed = 5) {
  const std::string params =
      "keys=" + std::to_string(keys) + ",hd=" + std::to_string(hd);
  return lock::lock_with("sfll-hd", original,
                         lock::make_options(seed, {}, params));
}

TEST(SfllHd, CorrectKeyUnlocksWithSatProof) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock_sfll(original, 8, 2);
  EXPECT_EQ(locked.scheme, "sfll-hd");
  EXPECT_EQ(locked.key_bits(), 8u);
  EXPECT_FALSE(locked.netlist.is_cyclic());
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1,
                                   /*also_sat_check=*/true));
}

TEST(SfllHd, WrongKeysCorruptOnlyAPointFunctionSliver) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock_sfll(original, 8, 1);
  // Random wrong keys disagree with the oracle only where their restore
  // shell or K*'s perturb shell fires: a vanishing fraction of patterns.
  const core::CorruptionStats corruption =
      core::output_corruption(original, locked, 8, 4, 3);
  EXPECT_GT(corruption.mean_error_rate, 0.0);
  EXPECT_LT(corruption.mean_error_rate, 0.05);
}

TEST(SfllHd, HdZeroDegeneratesToSingleShellAndStillUnlocks) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock_sfll(original, 6, 0);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1,
                                   /*also_sat_check=*/true));
}

TEST(SfllHd, BuildHdEqualsCountsExactly) {
  Netlist net("hd");
  std::vector<netlist::GateId> bits;
  for (int i = 0; i < 4; ++i) {
    bits.push_back(net.add_input("b" + std::to_string(i)));
  }
  net.mark_output(lock::build_hd_equals(net, bits, 2), "eq2");
  // eq2 is true exactly on the 6 four-bit patterns of weight 2.
  int ones = 0;
  for (int pattern = 0; pattern < 16; ++pattern) {
    std::vector<bool> in(4);
    int weight = 0;
    for (int i = 0; i < 4; ++i) {
      in[i] = ((pattern >> i) & 1) != 0;
      weight += in[i] ? 1 : 0;
    }
    const std::vector<bool> out = netlist::eval_once(net, in, {});
    EXPECT_EQ(out[0], weight == 2) << "pattern " << pattern;
    ones += out[0] ? 1 : 0;
  }
  EXPECT_EQ(ones, 6);
}

TEST(SfllHd, FallAttackRecoversKeyAndHammingDistance) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock_sfll(original, 8, 1, 7);
  const attacks::Oracle oracle(original);
  const attacks::FallResult fall = attacks::fall_attack(locked, oracle);
  EXPECT_TRUE(fall.restore_identified);
  EXPECT_EQ(fall.protected_bits, 8);
  EXPECT_GT(fall.error_patterns, 0);
  // Pure removal is NOT enough: the stripped function still errs on the
  // h-shell around K*.
  EXPECT_GT(fall.stripped_error_rate, 0.0);
  ASSERT_TRUE(fall.key_recovered);
  EXPECT_EQ(fall.hd, 1);
  EXPECT_EQ(fall.key, locked.correct_key);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, fall.key, 16, 1,
                                   /*also_sat_check=*/true));
}

TEST(SfllHd, FallAttackRecoversKeyAtLargerDistance) {
  const Netlist original = netlist::make_circuit("c499", 2);
  const LockedCircuit locked = lock_sfll(original, 6, 2, 11);
  const attacks::Oracle oracle(original);
  const attacks::FallResult fall = attacks::fall_attack(locked, oracle);
  ASSERT_TRUE(fall.key_recovered);
  EXPECT_EQ(fall.hd, 2);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, fall.key, 16, 1,
                                   /*also_sat_check=*/true));
}

TEST(SfllHd, FallBailsOnNonSfllLocks) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit locked = lock::lock_with(
      "rll", original, lock::make_options(5, {}, "keys=8"));
  const attacks::Oracle oracle(original);
  const attacks::FallResult fall = attacks::fall_attack(locked, oracle);
  EXPECT_FALSE(fall.key_recovered);
}

TEST(SfllHd, DeterministicInSeedAndValidatesParams) {
  const Netlist original = netlist::make_circuit("c432", 2);
  const LockedCircuit a = lock_sfll(original, 8, 2, 9);
  const LockedCircuit b = lock_sfll(original, 8, 2, 9);
  EXPECT_EQ(a.correct_key, b.correct_key);
  // hd > keys rejected both by validate() and by the lock itself.
  EXPECT_THROW(lock_sfll(original, 4, 5), std::invalid_argument);
}

}  // namespace
}  // namespace fl
