// PLR insertion: functional preservation under the derived key, cycle-mode
// guarantees, negation absorption, LUT twisting.
#include <gtest/gtest.h>

#include <random>

#include "core/insertion.h"
#include "core/verify.h"
#include "netlist/profiles.h"

namespace fl::core {
namespace {

using netlist::Netlist;

PlrConfig basic_config(int n, CycleMode mode = CycleMode::kAvoid) {
  PlrConfig config;
  config.cln.n = n;
  config.cycle_mode = mode;
  return config;
}

// Core invariant across seeds/topologies/sizes: the locked netlist under
// the derived key matches the original.
struct InsertCase {
  int n;
  ClnTopology topo;
  bool twist;
  double negate_p;
  std::uint64_t seed;
};

class InsertionProperty : public ::testing::TestWithParam<InsertCase> {};

TEST_P(InsertionProperty, CorrectKeyPreservesFunction) {
  const InsertCase c = GetParam();
  // Host sized to the CLN: a 32-wire antichain of live wires needs a
  // larger circuit than c432.
  const Netlist original =
      netlist::make_circuit(c.n >= 32 ? "c1908" : "c432", 11);
  Netlist locked = original;
  PlrConfig config = basic_config(c.n);
  config.cln.topology = c.topo;
  config.twist_luts = c.twist;
  config.negate_probability = c.negate_p;
  std::mt19937_64 rng(c.seed);
  const PlrInsertion ins = insert_plr(locked, config, rng, "plr");
  EXPECT_FALSE(locked.is_cyclic());
  EXPECT_TRUE(
      verify_unlocks(original, locked, ins.added_key_values, 8, c.seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InsertionProperty,
    ::testing::Values(
        InsertCase{4, ClnTopology::kBanyanNonBlocking, true, 0.5, 1},
        InsertCase{8, ClnTopology::kBanyanNonBlocking, true, 0.5, 2},
        InsertCase{16, ClnTopology::kBanyanNonBlocking, true, 0.5, 3},
        InsertCase{8, ClnTopology::kShuffleBlocking, true, 0.5, 4},
        InsertCase{8, ClnTopology::kBanyanNonBlocking, false, 0.5, 5},
        InsertCase{8, ClnTopology::kBanyanNonBlocking, true, 0.0, 6},
        InsertCase{8, ClnTopology::kBanyanNonBlocking, true, 1.0, 7},
        InsertCase{32, ClnTopology::kBanyanNonBlocking, true, 0.5, 8}));

TEST(Insertion, AvoidModeStaysAcyclicAcrossSeeds) {
  const Netlist original = netlist::make_circuit("c880", 21);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Netlist locked = original;
    std::mt19937_64 rng(seed);
    insert_plr(locked, basic_config(8), rng, "plr");
    EXPECT_FALSE(locked.is_cyclic()) << "seed " << seed;
  }
}

TEST(Insertion, ForceModeCreatesCycle) {
  const Netlist original = netlist::make_circuit("c432", 5);
  Netlist locked = original;
  std::mt19937_64 rng(9);
  const PlrInsertion ins =
      insert_plr(locked, basic_config(8, CycleMode::kForce), rng, "plr");
  EXPECT_TRUE(locked.is_cyclic());
  // Still functionally correct under the derived key (relaxation sim).
  EXPECT_TRUE(verify_unlocks(original, locked, ins.added_key_values, 8, 3));
}

TEST(Insertion, NegationRequiresInverters) {
  const Netlist original = netlist::make_circuit("c432", 5);
  Netlist locked = original;
  PlrConfig config = basic_config(8);
  config.cln.with_inverters = false;
  config.negate_probability = 0.5;
  std::mt19937_64 rng(1);
  EXPECT_THROW(insert_plr(locked, config, rng, "plr"), std::invalid_argument);
  config.negate_probability = 0.0;
  EXPECT_NO_THROW(insert_plr(locked, config, rng, "plr"));
}

TEST(Insertion, NegationActuallyRetypesDrivers) {
  const Netlist original = netlist::make_circuit("c1355", 6);
  Netlist locked = original;
  PlrConfig config = basic_config(16);
  config.negate_probability = 1.0;  // negate every negatable driver
  std::mt19937_64 rng(2);
  const PlrInsertion ins = insert_plr(locked, config, rng, "plr");
  int retyped = 0;
  for (const netlist::GateId w : ins.selected_wires) {
    if (locked.gate(w).type != original.gate(w).type) ++retyped;
  }
  EXPECT_EQ(retyped, ins.num_negated_drivers);
  EXPECT_GT(retyped, 0);
  EXPECT_TRUE(verify_unlocks(original, locked, ins.added_key_values, 8, 4));
}

TEST(Insertion, KeyCountMatchesStructure) {
  const Netlist original = netlist::make_circuit("c499", 7);
  Netlist locked = original;
  PlrConfig config = basic_config(8);
  config.twist_luts = false;
  std::mt19937_64 rng(3);
  const PlrInsertion ins = insert_plr(locked, config, rng, "plr");
  EXPECT_EQ(static_cast<int>(ins.added_key_values.size()),
            cln_num_keys(config.cln));
  EXPECT_EQ(locked.num_keys(), ins.added_key_values.size());
}

TEST(Insertion, LutTwistingAddsTruthTableKeys) {
  const Netlist original = netlist::make_circuit("c499", 7);
  Netlist locked = original;
  PlrConfig config = basic_config(8);
  config.twist_luts = true;
  std::mt19937_64 rng(3);
  const PlrInsertion ins = insert_plr(locked, config, rng, "plr");
  EXPECT_GT(ins.num_luts, 0);
  EXPECT_GT(static_cast<int>(ins.added_key_values.size()),
            cln_num_keys(config.cln));
}

TEST(Insertion, HintDescribesRouting) {
  const Netlist original = netlist::make_circuit("i4", 8);
  Netlist locked = original;
  PlrConfig config = basic_config(8);
  std::mt19937_64 rng(4);
  const PlrInsertion ins = insert_plr(locked, config, rng, "plr");
  ASSERT_EQ(ins.hint.block_outputs.size(), 8u);
  ASSERT_EQ(ins.hint.permutation.size(), 8u);
  // Permutation is a bijection on 0..7.
  std::vector<bool> seen(8, false);
  for (const int p : ins.hint.permutation) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 8);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Insertion, TooSmallCircuitThrows) {
  const Netlist c17 = netlist::make_c17();
  Netlist locked = c17;
  std::mt19937_64 rng(1);
  EXPECT_THROW(insert_plr(locked, basic_config(32), rng, "plr"),
               std::invalid_argument);
}

}  // namespace
}  // namespace fl::core
