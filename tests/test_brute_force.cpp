// Brute-force keyspace sweep.
#include <gtest/gtest.h>

#include "attacks/brute_force.h"
#include "core/verify.h"
#include "locking/rll.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using netlist::Netlist;

TEST(BruteForce, FindsSmallRllKey) {
  const Netlist original = netlist::make_circuit("c432", 141);
  lock::RllConfig config;
  config.num_keys = 8;
  const core::LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  const BruteForceResult result = brute_force_attack(locked, oracle);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*sat=*/true));
  EXPECT_LE(result.keys_tried, 256u);
}

TEST(BruteForce, KeysTriedGrowsWithKeyPosition) {
  // The correct key's little-endian integer value bounds the sweep length.
  const Netlist original = netlist::make_circuit("c432", 142);
  lock::RllConfig config;
  config.num_keys = 6;
  const core::LockedCircuit locked = lock::rll_lock(original, config);
  std::uint64_t key_value = 0;
  for (std::size_t i = 0; i < locked.correct_key.size(); ++i) {
    key_value |= static_cast<std::uint64_t>(locked.correct_key[i]) << i;
  }
  const Oracle oracle(original);
  const BruteForceResult result = brute_force_attack(locked, oracle);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.keys_tried, key_value + 1);
}

TEST(BruteForce, RefusesLargeKeySpaces) {
  const Netlist original = netlist::make_circuit("c880", 143);
  lock::RllConfig config;
  config.num_keys = 32;
  const core::LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  EXPECT_THROW(brute_force_attack(locked, oracle), std::invalid_argument);
}

}  // namespace
}  // namespace fl::attacks
