// Bit-parallel simulation: per-gate semantics, acyclic sweeps, cyclic
// relaxation, convergence masks.
#include <gtest/gtest.h>

#include <random>

#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::netlist {
namespace {

TEST(EvalGate, TwoInputTruthTables) {
  const Word a = 0b0011;  // pattern: a = 0,0,1,1 over 4 slots? bits LSB-first
  const Word b = 0b0101;
  EXPECT_EQ(eval_gate(GateType::kAnd, std::vector<Word>{a, b}) & 0xF,
            Word{0b0001});
  EXPECT_EQ(eval_gate(GateType::kNand, std::vector<Word>{a, b}) & 0xF,
            Word{0b1110});
  EXPECT_EQ(eval_gate(GateType::kOr, std::vector<Word>{a, b}) & 0xF,
            Word{0b0111});
  EXPECT_EQ(eval_gate(GateType::kNor, std::vector<Word>{a, b}) & 0xF,
            Word{0b1000});
  EXPECT_EQ(eval_gate(GateType::kXor, std::vector<Word>{a, b}) & 0xF,
            Word{0b0110});
  EXPECT_EQ(eval_gate(GateType::kXnor, std::vector<Word>{a, b}) & 0xF,
            Word{0b1001});
  EXPECT_EQ(eval_gate(GateType::kBuf, std::vector<Word>{a}) & 0xF, a);
  EXPECT_EQ(eval_gate(GateType::kNot, std::vector<Word>{a}) & 0xF,
            Word{0b1100});
}

TEST(EvalGate, MuxSelectsSecondInputWhenSelHigh) {
  const Word sel = 0b10;
  const Word in_a = 0b01;
  const Word in_b = 0b10;
  // bit0: sel=0 -> a(bit0)=1; bit1: sel=1 -> b(bit1)=1.
  EXPECT_EQ(eval_gate(GateType::kMux, std::vector<Word>{sel, in_a, in_b}) & 3,
            Word{0b11});
}

TEST(EvalGate, NaryGates) {
  const std::vector<Word> fan{0b1110, 0b1101, 0b1011};
  EXPECT_EQ(eval_gate(GateType::kAnd, fan) & 0xF, Word{0b1000});
  EXPECT_EQ(eval_gate(GateType::kOr, fan) & 0xF, Word{0b1111});
  EXPECT_EQ(eval_gate(GateType::kXor, fan) & 0xF,
            Word{0b1110 ^ 0b1101 ^ 0b1011} & 0xF);
}

TEST(Simulator, C17KnownVectors) {
  const Netlist c17 = make_c17();
  const Simulator sim(c17);
  // All-zero input: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=1,
  // 22=NAND(1,1)=0, 23=0.
  const std::vector<Word> zeros(5, 0);
  const auto out0 = sim.run(zeros, {});
  EXPECT_EQ(out0[0] & 1, 0u);
  EXPECT_EQ(out0[1] & 1, 0u);
  // All-one input: 10=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
  // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
  const std::vector<Word> ones(5, ~Word{0});
  const auto out1 = sim.run(ones, {});
  EXPECT_EQ(out1[0] & 1, 1u);
  EXPECT_EQ(out1[1] & 1, 0u);
}

TEST(Simulator, RejectsCyclicNetlist) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a});
  const GateId g2 = n.add_gate(GateType::kOr, {g1, a});
  n.replace_fanin_of(g1, a, g2);
  n.mark_output(g2);
  EXPECT_THROW(Simulator{n}, std::invalid_argument);
}

TEST(Simulator, StimulusWidthChecked) {
  const Netlist c17 = make_c17();
  const Simulator sim(c17);
  const std::vector<Word> wrong(3, 0);
  EXPECT_THROW(sim.run(wrong, {}), std::invalid_argument);
}

TEST(SimulateCyclic, MatchesAcyclicOnDag) {
  // On an acyclic netlist, relaxation must agree with the topological sweep.
  const Netlist c17 = make_c17();
  const Simulator sim(c17);
  std::mt19937_64 rng(11);
  for (int round = 0; round < 8; ++round) {
    std::vector<Word> in(5);
    for (Word& w : in) w = rng();
    const auto expected = sim.run(in, {});
    const auto got = simulate_cyclic(c17, in, {});
    EXPECT_EQ(got.converged, ~Word{0});
    for (std::size_t o = 0; o < expected.size(); ++o) {
      EXPECT_EQ(expected[o], got.outputs[o]);
    }
  }
}

TEST(SimulateCyclic, LatchingCycleConverges) {
  // OR feedback loop: g = OR(a, g). From init 0 it settles at g = a.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kOr, {a, a});
  n.replace_fanin_of(g, a, g);  // only the second pin
  // Now g = OR(a, g)? replace_fanin_of replaced *all* pins; rebuild:
  n.set_fanin(g, {a, g});
  n.mark_output(g);
  const std::vector<Word> in{0b10};
  const auto result = simulate_cyclic(n, in, {});
  EXPECT_EQ(result.converged, ~Word{0});
  EXPECT_EQ(result.outputs[0] & 3, Word{0b10});
}

TEST(SimulateCyclic, OscillatingRingFlagsNonConvergence) {
  // g = NOT(g): classic oscillator; must be flagged, not looped forever.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kNot, {a});
  n.set_fanin(g, {g});
  n.mark_output(g);
  const std::vector<Word> in{0};
  const auto result = simulate_cyclic(n, in, {});
  EXPECT_EQ(result.converged, Word{0});
}

TEST(EvalOnce, SinglePatternMatchesBitParallel) {
  const Netlist c17 = make_c17();
  const Simulator sim(c17);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> in(5);
    std::vector<Word> in_words(5);
    for (int i = 0; i < 5; ++i) {
      in[i] = (rng() & 1) != 0;
      in_words[i] = in[i] ? ~Word{0} : 0;
    }
    const auto bits = eval_once(c17, in, {});
    const auto words = sim.run(in_words, {});
    for (std::size_t o = 0; o < bits.size(); ++o) {
      EXPECT_EQ(bits[o], (words[o] & 1) != 0);
    }
  }
}

TEST(SimulatorScratch, TrimReleasesOnlyAboveRetainBudget) {
  // Long-lived (thread_local) scratches grow to the largest batch they ever
  // served; trim() frees the block only when it exceeds the retain budget.
  Simulator::Scratch scratch;
  scratch.value.resize(1 << 16);
  const std::size_t grown = scratch.capacity_bytes();
  ASSERT_GE(grown, (std::size_t{1} << 16) * sizeof(Word));
  scratch.trim(grown);  // within budget: storage kept
  EXPECT_GE(scratch.capacity_bytes(), grown);
  scratch.trim(grown - 1);  // over budget: released
  EXPECT_LT(scratch.capacity_bytes(), grown);
  EXPECT_TRUE(scratch.value.empty());
}

}  // namespace
}  // namespace fl::netlist
