// PPA model: per-gate costs, netlist estimation, STT-LUT model (Fig. 5),
// CLN overhead ratios (Table 3 shape).
#include <gtest/gtest.h>

#include "core/cln.h"
#include "netlist/profiles.h"
#include "ppa/estimator.h"
#include "ppa/stt_lut.h"

namespace fl::ppa {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

TEST(GateCost, SourcesAreFree) {
  EXPECT_EQ(gate_cost(GateType::kInput, 0).area_um2, 0.0);
  EXPECT_EQ(gate_cost(GateType::kKey, 0).area_um2, 0.0);
  EXPECT_EQ(gate_cost(GateType::kConst1, 0).power_nw, 0.0);
}

TEST(GateCost, NaryScalesLinearlyInArea) {
  const GateCost c2 = gate_cost(GateType::kAnd, 2);
  const GateCost c4 = gate_cost(GateType::kAnd, 4);
  const GateCost c8 = gate_cost(GateType::kAnd, 8);
  EXPECT_NEAR(c4.area_um2, 3 * c2.area_um2, 1e-9);
  EXPECT_NEAR(c8.area_um2, 7 * c2.area_um2, 1e-9);
  // Delay scales with tree depth, not cell count.
  EXPECT_LT(c8.delay_ns, 4 * c2.delay_ns);
}

TEST(GateCost, RelativeOrderingSane) {
  // NAND is the cheapest 2-input gate; XOR costs more; MUX is the largest.
  const double nand = base_cell_cost(GateType::kNand).area_um2;
  const double x = base_cell_cost(GateType::kXor).area_um2;
  const double mux = base_cell_cost(GateType::kMux).area_um2;
  EXPECT_LT(nand, x);
  EXPECT_LT(x, mux);
}

TEST(Estimator, EmptyAndSimpleNetlists) {
  Netlist n;
  n.add_input("a");
  const PpaReport empty = estimate_ppa(n);
  EXPECT_EQ(empty.area_um2, 0.0);
  EXPECT_EQ(empty.gate_count, 0u);

  const GateId g = n.add_gate(GateType::kNand, {0, 0});
  n.mark_output(g, "y");
  const PpaReport one = estimate_ppa(n);
  EXPECT_NEAR(one.area_um2, base_cell_cost(GateType::kNand).area_um2, 1e-9);
  EXPECT_EQ(one.gate_count, 1u);
  EXPECT_GT(one.power_nw, 0.0);
}

TEST(Estimator, DelayIsCriticalPath) {
  // Chain of 4 NOTs vs 1 NOT: delay ratio = 4.
  Netlist chain;
  GateId cur = chain.add_input("a");
  for (int i = 0; i < 4; ++i) cur = chain.add_gate(GateType::kNot, {cur});
  chain.mark_output(cur, "y");
  const double d4 = estimate_ppa(chain).critical_delay_ns;
  EXPECT_NEAR(d4, 4 * base_cell_cost(GateType::kNot).delay_ns, 1e-9);
}

TEST(Estimator, CyclicNetlistDoesNotHang) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g, {a, g});
  n.mark_output(g, "y");
  const PpaReport report = estimate_ppa(n);
  EXPECT_GT(report.area_um2, 0.0);
  EXPECT_GT(report.critical_delay_ns, 0.0);
}

TEST(SttLut, Fig5Shape) {
  // The paper's claim: sizes 2..5 have negligible overhead vs CMOS cells;
  // beyond 5 the LUT cost takes off.
  for (int k = 2; k <= 5; ++k) {
    const LutOverhead o = stt_lut_overhead(k);
    EXPECT_LT(o.area, 4.0) << "k=" << k;   // same order of magnitude
    EXPECT_LT(o.delay, 2.0) << "k=" << k;
  }
  // Cost is monotone and accelerates with size.
  double prev = stt_lut_cost(2).area_um2;
  for (int k = 3; k <= 8; ++k) {
    const double area = stt_lut_cost(k).area_um2;
    EXPECT_GT(area, prev);
    prev = area;
  }
  EXPECT_GT(stt_lut_cost(8).area_um2 / stt_lut_cost(5).area_um2, 4.0);
  EXPECT_THROW(stt_lut_cost(1), std::invalid_argument);
  EXPECT_THROW(stt_lut_cost(9), std::invalid_argument);
}

// Table 3 shape properties over CLN hardware.
TEST(ClnPpa, NonBlockingCostsAboutTwiceBlocking) {
  for (const int n : {32, 64}) {
    const auto build = [n](core::ClnTopology topo) {
      core::ClnConfig config;
      config.n = n;
      config.topology = topo;
      Netlist net;
      std::vector<GateId> inputs;
      for (int i = 0; i < n; ++i) inputs.push_back(net.add_input("x"));
      const core::ClnInstance inst = core::ClnBuilder(config).build(net, inputs);
      for (const GateId o : inst.outputs) net.mark_output(o);
      return estimate_ppa(net);
    };
    const PpaReport blocking = build(core::ClnTopology::kShuffleBlocking);
    const PpaReport nonblocking = build(core::ClnTopology::kBanyanNonBlocking);
    // Paper §3.1: "its area and power overhead is roughly 2x compared to a
    // blocking CLN with the same N" (stage ratio (2logN-2)/logN).
    const double expected_ratio =
        static_cast<double>(2 * std::log2(n) - 2) / std::log2(n);
    EXPECT_NEAR(nonblocking.area_um2 / blocking.area_um2, expected_ratio, 0.25)
        << "n=" << n;
  }
}

TEST(ClnPpa, AreaGrowsWithN) {
  double prev = 0.0;
  for (const int n : {16, 32, 64, 128}) {
    core::ClnConfig config;
    config.n = n;
    config.topology = core::ClnTopology::kShuffleBlocking;
    Netlist net;
    std::vector<GateId> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(net.add_input("x"));
    const core::ClnInstance inst = core::ClnBuilder(config).build(net, inputs);
    for (const GateId o : inst.outputs) net.mark_output(o);
    const double area = estimate_ppa(net).area_um2;
    EXPECT_GT(area, prev);
    prev = area;
  }
}

}  // namespace
}  // namespace fl::ppa
