// CLN construction: stage/SwB/key counts (paper formulas), permutation
// tracing, routing coverage of blocking vs almost-non-blocking topologies,
// simulation semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/cln.h"
#include "netlist/simulator.h"

namespace fl::core {
namespace {

using netlist::GateId;
using netlist::Netlist;
using netlist::Word;

class ClnCounts : public ::testing::TestWithParam<int> {};

TEST_P(ClnCounts, PaperFormulas) {
  const int n = GetParam();
  const int b = static_cast<int>(std::log2(n));
  ClnConfig blocking;
  blocking.n = n;
  blocking.topology = ClnTopology::kShuffleBlocking;
  // Paper: blocking networks have N/2 * log2(N) SwBs.
  EXPECT_EQ(cln_num_swbs(blocking), n / 2 * b);
  EXPECT_EQ(cln_num_stages(blocking), b);

  ClnConfig nonblocking;
  nonblocking.n = n;
  nonblocking.topology = ClnTopology::kBanyanNonBlocking;
  // Paper: LOG(N, log2(N)-2, 1) has log2(N)-2 extra stages.
  EXPECT_EQ(cln_num_stages(nonblocking), 2 * b - 2);
  EXPECT_EQ(cln_num_swbs(nonblocking), n / 2 * (2 * b - 2));

  // Key counts: 2 bits per SwB + N inverter bits.
  EXPECT_EQ(cln_num_keys(nonblocking),
            2 * cln_num_swbs(nonblocking) + n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClnCounts, ::testing::Values(4, 8, 16, 32, 64));

TEST(Cln, RejectsBadSizes) {
  ClnConfig config;
  config.n = 6;
  EXPECT_THROW(ClnBuilder{config}, std::invalid_argument);
  config.n = 2;
  EXPECT_THROW(ClnBuilder{config}, std::invalid_argument);
}

TEST(Cln, BuildMatchesDeclaredCounts) {
  for (const ClnTopology topo :
       {ClnTopology::kShuffleBlocking, ClnTopology::kBanyanNonBlocking}) {
    ClnConfig config;
    config.n = 8;
    config.topology = topo;
    const ClnBuilder builder(config);
    Netlist net;
    std::vector<GateId> inputs;
    for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
    const ClnInstance inst = builder.build(net, inputs);
    EXPECT_EQ(inst.num_swbs(), cln_num_swbs(config));
    EXPECT_EQ(static_cast<int>(inst.key_gates.size()), cln_num_keys(config));
    EXPECT_EQ(inst.num_select_keys + inst.num_inverter_keys,
              cln_num_keys(config));
    EXPECT_EQ(inst.outputs.size(), 8u);
    EXPECT_FALSE(net.is_cyclic());
  }
}

// Simulation agrees with trace_permutation: for random routing keys, output
// j carries input perm[j] (inverters off).
TEST(Cln, TraceMatchesSimulation) {
  std::mt19937_64 rng(3);
  for (const ClnTopology topo :
       {ClnTopology::kShuffleBlocking, ClnTopology::kBanyanNonBlocking}) {
    ClnConfig config;
    config.n = 16;
    config.topology = topo;
    config.with_inverters = false;
    const ClnBuilder builder(config);
    Netlist net;
    std::vector<GateId> inputs;
    for (int i = 0; i < 16; ++i) inputs.push_back(net.add_input("x"));
    const ClnInstance inst = builder.build(net, inputs);
    for (const GateId o : inst.outputs) net.mark_output(o);

    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<bool> key = builder.random_routing_key(rng);
      const std::vector<int> perm = inst.trace_permutation(key);
      // perm must be a permutation.
      std::set<int> seen(perm.begin(), perm.end());
      ASSERT_EQ(seen.size(), 16u);

      std::vector<Word> in(16);
      for (Word& w : in) w = rng();
      std::vector<Word> kw(key.size());
      for (std::size_t i = 0; i < key.size(); ++i) {
        kw[i] = key[i] ? ~Word{0} : 0;
      }
      const auto out = netlist::Simulator(net).run(in, kw);
      for (int j = 0; j < 16; ++j) {
        ASSERT_EQ(out[j], in[perm[j]]) << "output " << j;
      }
    }
  }
}

TEST(Cln, InverterLayerNegatesPerKeyBit) {
  ClnConfig config;
  config.n = 4;
  config.with_inverters = true;
  const ClnBuilder builder(config);
  Netlist net;
  std::vector<GateId> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(net.add_input("x"));
  const ClnInstance inst = builder.build(net, inputs);
  for (const GateId o : inst.outputs) net.mark_output(o);

  std::mt19937_64 rng(4);
  const std::vector<bool> select = builder.random_routing_key(rng);
  const std::vector<int> perm = inst.trace_permutation(select);
  // Straight key + inverter on output 2 only.
  std::vector<bool> key = select;
  key.insert(key.end(), {false, false, true, false});
  std::vector<Word> in{0x1, 0x2, 0x4, 0x8};
  std::vector<Word> kw(key.size());
  for (std::size_t i = 0; i < key.size(); ++i) kw[i] = key[i] ? ~Word{0} : 0;
  const auto out = netlist::Simulator(net).run(in, kw);
  for (int j = 0; j < 4; ++j) {
    const Word expect = j == 2 ? ~in[perm[j]] : in[perm[j]];
    EXPECT_EQ(out[j], expect);
  }
}

TEST(Cln, BroadcastConfigurationDetected) {
  ClnConfig config;
  config.n = 4;
  const ClnBuilder builder(config);
  Netlist net;
  std::vector<GateId> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(net.add_input("x"));
  const ClnInstance inst = builder.build(net, inputs);
  // First SwB keys (1,0): both MUXes pick input b / input b -> broadcast.
  std::vector<bool> key(inst.num_select_keys, false);
  key[0] = true;
  EXPECT_THROW(inst.trace_permutation(key), std::invalid_argument);
}

// Routing coverage: the almost-non-blocking network realizes far more
// distinct permutations than the blocking shuffle at equal N (the paper's
// §3.1 argument for the LOG(N, log2N-2, 1) topology).
TEST(Cln, NonBlockingCoversMorePermutations) {
  std::mt19937_64 rng(7);
  const auto count_distinct = [&rng](ClnTopology topo) {
    ClnConfig config;
    config.n = 8;
    config.topology = topo;
    config.with_inverters = false;
    const ClnBuilder builder(config);
    Netlist net;
    std::vector<GateId> inputs;
    for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
    const ClnInstance inst = builder.build(net, inputs);
    std::set<std::vector<int>> perms;
    for (int trial = 0; trial < 60000; ++trial) {
      perms.insert(inst.trace_permutation(builder.random_routing_key(rng)));
    }
    return perms.size();
  };
  const std::size_t blocking = count_distinct(ClnTopology::kShuffleBlocking);
  const std::size_t nonblocking =
      count_distinct(ClnTopology::kBanyanNonBlocking);
  // 8-wire blocking shuffle has only 2^12 = 4096 switch configurations, so
  // it can never realize more than 4096 of the 8! = 40320 permutations. The
  // extended LOG(8,1,1) network must demonstrably exceed that ceiling.
  EXPECT_LE(blocking, 4096u);
  EXPECT_GT(nonblocking, 2 * blocking);
}

// LOG(N, M, P) generalization: arbitrary extra stages and vertical copies.
TEST(Cln, ExtraStagesParameter) {
  ClnConfig config;
  config.n = 16;
  config.topology = ClnTopology::kBanyanNonBlocking;
  config.extra_stages = 0;  // plain butterfly
  EXPECT_EQ(cln_num_stages(config), 4);
  config.extra_stages = 5;  // beyond the Benes point, strides cycle
  EXPECT_EQ(cln_num_stages(config), 9);
  config.extra_stages = -1;  // paper default: log2(N) - 2
  EXPECT_EQ(cln_num_stages(config), 6);
  config.extra_stages = -2;
  EXPECT_THROW(ClnBuilder{config}, std::invalid_argument);
}

TEST(Cln, ExtraStagesRouteCorrectly) {
  std::mt19937_64 rng(21);
  for (const int extra : {0, 1, 3, 6}) {
    ClnConfig config;
    config.n = 8;
    config.extra_stages = extra;
    config.with_inverters = false;
    const ClnBuilder builder(config);
    Netlist net;
    std::vector<GateId> inputs;
    for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
    const ClnInstance inst = builder.build(net, inputs);
    for (const GateId o : inst.outputs) net.mark_output(o);
    const std::vector<bool> key = builder.random_routing_key(rng);
    const std::vector<int> perm = inst.trace_permutation(key);
    std::vector<Word> in(8);
    for (Word& w : in) w = rng();
    std::vector<Word> kw(key.size());
    for (std::size_t i = 0; i < key.size(); ++i) kw[i] = key[i] ? ~Word{0} : 0;
    const auto out = netlist::Simulator(net).run(in, kw);
    for (int j = 0; j < 8; ++j) {
      ASSERT_EQ(out[j], in[perm[j]]) << "extra=" << extra;
    }
  }
}

TEST(Cln, VerticalCopiesLogNmp) {
  // LOG(8, 1, 3): three vertical copies + 2-bit copy selectors per output.
  ClnConfig config;
  config.n = 8;
  config.extra_stages = 1;
  config.copies = 3;
  config.with_inverters = true;
  const int per_copy_swbs = 8 / 2 * (3 + 1);
  EXPECT_EQ(cln_num_swbs(config), 3 * per_copy_swbs);
  EXPECT_EQ(cln_copy_select_bits(config), 2);
  EXPECT_EQ(cln_num_keys(config), 3 * per_copy_swbs * 2 + 8 * 2 + 8);

  const ClnBuilder builder(config);
  Netlist net;
  std::vector<GateId> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
  const ClnInstance inst = builder.build(net, inputs);
  for (const GateId o : inst.outputs) net.mark_output(o);
  EXPECT_EQ(static_cast<int>(inst.key_gates.size()), cln_num_keys(config));
  EXPECT_EQ(inst.num_copy_keys, 16);
  EXPECT_FALSE(net.is_cyclic());

  // Routing correctness through the copy-select column.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<bool> key = builder.random_routing_key(rng);
    const std::vector<int> perm = inst.trace_permutation(key);
    std::vector<bool> full = key;
    full.resize(inst.key_gates.size(), false);  // inverters off
    std::vector<Word> in(8);
    for (Word& w : in) w = rng();
    std::vector<Word> kw(full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
      kw[i] = full[i] ? ~Word{0} : 0;
    }
    const auto out = netlist::Simulator(net).run(in, kw);
    for (int j = 0; j < 8; ++j) {
      ASSERT_EQ(out[j], in[perm[j]]) << "trial " << trial;
    }
  }
}

TEST(Cln, CopyMixedNonPermutationDetected) {
  ClnConfig config;
  config.n = 8;
  config.copies = 2;
  config.with_inverters = false;
  const ClnBuilder builder(config);
  Netlist net;
  std::vector<GateId> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
  const ClnInstance inst = builder.build(net, inputs);
  // Straight routing in both copies, mixed copy choices: still the identity
  // permutation (the copies are identical) — valid.
  std::vector<bool> key(inst.num_select_keys, false);
  EXPECT_NO_THROW(inst.trace_permutation(key));
  // Swap the *last* stage's first SwB in copy 0 only: copy 0 now routes
  // source 2 to output 0. Select copy 0 for output 0 and copy 1 (identity)
  // for output 2: both outputs source input 2 — not a permutation.
  const int last_stage_first_swb = inst.num_swb_keys / 2 - 4 * 2;  // stage 3
  key[last_stage_first_swb] = true;
  key[last_stage_first_swb + 1] = true;
  key[inst.num_swb_keys + 2] = true;  // output 2 -> copy 1
  EXPECT_THROW(inst.trace_permutation(key), std::invalid_argument);
}

TEST(Cln, SharedSelectHalvesKeyBits) {
  ClnConfig config;
  config.n = 8;
  config.independent_selects = false;
  config.with_inverters = false;
  EXPECT_EQ(cln_num_keys(config), cln_num_swbs(config));
  const ClnBuilder builder(config);
  Netlist net;
  std::vector<GateId> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(net.add_input("x"));
  const ClnInstance inst = builder.build(net, inputs);
  EXPECT_EQ(static_cast<int>(inst.key_gates.size()), cln_num_keys(config));
  // Every select key now swaps a full SwB: all keys permute.
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> key(inst.num_select_keys);
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = (rng() & 1) != 0;
    EXPECT_NO_THROW(inst.trace_permutation(key));
  }
}

}  // namespace
}  // namespace fl::core
