// The lock-scheme registry: name lookup, parameter parsing/validation,
// capability flags, attack-name helpers, and the locked-circuit provenance
// round-trip through .bench/.key files.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "core/verify.h"
#include "locking/scheme.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"

namespace fl {
namespace {

TEST(SchemeRegistry, ListsAllSchemesSortedByUniqueName) {
  const auto& all = lock::registry();
  ASSERT_GE(all.size(), 8u);
  std::set<std::string> names;
  std::string previous;
  for (const lock::LockScheme* scheme : all) {
    const std::string name(scheme->name());
    EXPECT_FALSE(name.empty());
    EXPECT_GT(name, previous) << "registry must be sorted by name";
    previous = name;
    names.insert(name);
    EXPECT_FALSE(std::string(scheme->description()).empty()) << name;
    EXPECT_FALSE(std::string(scheme->params_help()).empty()) << name;
  }
  EXPECT_EQ(names.size(), all.size());
  for (const char* required :
       {"antisat", "cross-lock", "full-lock", "interlock", "lut-lock", "rll",
        "sarlock", "sfll-hd"}) {
    EXPECT_TRUE(names.count(required)) << required;
  }
}

TEST(SchemeRegistry, FindSchemeAndNames) {
  EXPECT_NE(lock::find_scheme("full-lock"), nullptr);
  EXPECT_NE(lock::find_scheme("sfll-hd"), nullptr);
  EXPECT_EQ(lock::find_scheme("nonesuch"), nullptr);
  const std::string names = lock::scheme_names();
  EXPECT_NE(names.find("interlock"), std::string::npos);
  EXPECT_NE(names.find("sarlock"), std::string::npos);
}

TEST(SchemeRegistry, LockWithUnknownSchemeThrows) {
  const netlist::Netlist original = netlist::make_c17();
  EXPECT_THROW(lock::lock_with("nonesuch", original, lock::make_options(1)),
               std::invalid_argument);
}

TEST(SchemeRegistry, ParseParamsMergesAndRejectsJunk) {
  lock::SchemeOptions options;
  lock::parse_params_into(options, "keys=8, hd=1");
  EXPECT_EQ(options.params.at("keys"), "8");
  EXPECT_EQ(options.params.at("hd"), "1");
  lock::parse_params_into(options, "keys=16");  // later wins
  EXPECT_EQ(options.params.at("keys"), "16");
  EXPECT_THROW(lock::parse_params_into(options, "keys"),
               std::invalid_argument);
}

TEST(SchemeRegistry, ValidateRejectsUnknownAndOutOfRangeParams) {
  const lock::LockScheme* sarlock = lock::find_scheme("sarlock");
  ASSERT_NE(sarlock, nullptr);
  EXPECT_NO_THROW(sarlock->validate(lock::make_options(1, {}, "keys=8")));
  // Unknown parameter names the known set.
  try {
    sarlock->validate(lock::make_options(1, {}, "kyes=8"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("kyes"), std::string::npos);
  }
  EXPECT_THROW(sarlock->validate(lock::make_options(1, {}, "keys=0")),
               std::invalid_argument);
  EXPECT_THROW(sarlock->validate(lock::make_options(1, {}, "keys=banana")),
               std::invalid_argument);
  const lock::LockScheme* sfll = lock::find_scheme("sfll-hd");
  ASSERT_NE(sfll, nullptr);
  EXPECT_THROW(sfll->validate(lock::make_options(1, {}, "keys=4,hd=9")),
               std::invalid_argument);
}

TEST(SchemeRegistry, CapabilityFlags) {
  const lock::LockScheme* full = lock::find_scheme("full-lock");
  ASSERT_NE(full, nullptr);
  EXPECT_FALSE(full->caps().may_be_cyclic);
  EXPECT_TRUE(full->caps().removal_resilient);
  EXPECT_TRUE(full->caps().has_routing_blocks);
  EXPECT_TRUE(
      full->caps(lock::make_options(1, {}, "cycle=force")).may_be_cyclic);

  const lock::LockScheme* interlock = lock::find_scheme("interlock");
  ASSERT_NE(interlock, nullptr);
  EXPECT_TRUE(interlock->caps().removal_resilient);
  EXPECT_TRUE(interlock->caps().has_routing_blocks);
  EXPECT_FALSE(interlock->caps().may_be_cyclic);

  const lock::LockScheme* sfll = lock::find_scheme("sfll-hd");
  ASSERT_NE(sfll, nullptr);
  EXPECT_TRUE(sfll->caps().point_function);
  EXPECT_TRUE(sfll->caps().removal_resilient);

  EXPECT_TRUE(lock::find_scheme("sarlock")->caps().point_function);
  EXPECT_FALSE(lock::find_scheme("rll")->caps().point_function);
  EXPECT_TRUE(lock::find_scheme("cross-lock")->caps().has_routing_blocks);
}

TEST(SchemeRegistry, ValidateEncodeOptionGatesConeOnCyclicCapableSchemes) {
  // cone + a scheme that may emit cycles under these params: rejected.
  EXPECT_THROW(lock::validate_encode_option(
                   "cone", "full-lock", lock::make_options(1, {}, "cycle=force")),
               std::invalid_argument);
  // cone + acyclic-by-construction configurations: fine.
  EXPECT_NO_THROW(
      lock::validate_encode_option("cone", "full-lock", lock::make_options(1)));
  EXPECT_NO_THROW(
      lock::validate_encode_option("cone", "rll", lock::make_options(1)));
  // Unknown scheme (e.g. provenance "file"): passes, the netlist decides.
  EXPECT_NO_THROW(
      lock::validate_encode_option("cone", "file", lock::make_options(1)));
  // Other encode modes never gate here.
  EXPECT_NO_THROW(lock::validate_encode_option(
      "auto", "full-lock", lock::make_options(1, {}, "cycle=force")));
  EXPECT_NO_THROW(lock::validate_encode_option(
      "full", "full-lock", lock::make_options(1, {}, "cycle=force")));
}

TEST(SchemeRegistry, AttackHelpers) {
  EXPECT_TRUE(lock::known_attack("auto"));
  EXPECT_TRUE(lock::known_attack("fall"));
  EXPECT_TRUE(lock::known_attack("double-dip"));
  EXPECT_FALSE(lock::known_attack("nonesuch"));
  EXPECT_EQ(lock::resolve_attack("auto", /*cyclic=*/false), "sat");
  EXPECT_EQ(lock::resolve_attack("auto", /*cyclic=*/true), "cycsat");
  EXPECT_EQ(lock::resolve_attack("double-dip", /*cyclic=*/true), "cycsat");
  EXPECT_EQ(lock::resolve_attack("double-dip", /*cyclic=*/false),
            "double-dip");
  EXPECT_EQ(lock::resolve_attack("fall", /*cyclic=*/false), "fall");
  EXPECT_EQ(lock::resolve_attack("appsat", /*cyclic=*/true), "appsat");
}

TEST(SchemeRegistry, ProvenanceRoundTripsThroughBenchFiles) {
  const netlist::Netlist original = netlist::make_circuit("c432", 2);
  const core::LockedCircuit locked = lock::lock_with(
      "sarlock", original, lock::make_options(7, {}, "keys=8"));
  const std::string path = testing::TempDir() + "scheme_roundtrip.bench";
  lock::write_locked_circuit(locked, path);

  const core::LockedCircuit loaded = lock::read_locked_circuit(path);
  EXPECT_EQ(loaded.scheme, "sarlock");
  EXPECT_EQ(loaded.params, locked.params);
  EXPECT_NE(loaded.scheme, "file") << "tool-made locks must keep provenance";
  EXPECT_EQ(loaded.netlist.num_keys(), locked.netlist.num_keys());
  EXPECT_EQ(loaded.netlist.num_gates(), locked.netlist.num_gates());
  // The attacker's view: no key material in the .bench itself.
  EXPECT_TRUE(loaded.correct_key.empty());

  // The .key sidecar carries the same provenance header plus the key bits.
  std::ifstream key_file(path + ".key");
  ASSERT_TRUE(key_file.good());
  std::string line;
  std::getline(key_file, line);
  EXPECT_EQ(line, "# lock-scheme: sarlock");
  std::getline(key_file, line);
  EXPECT_EQ(line.rfind("# lock-params: ", 0), 0u);
}

TEST(SchemeRegistry, ForeignBenchFilesFallBackToFileScheme) {
  const netlist::Netlist original = netlist::make_c17();
  const std::string path = testing::TempDir() + "foreign.bench";
  netlist::write_bench_file(original, path);
  const core::LockedCircuit loaded = lock::read_locked_circuit(path);
  EXPECT_EQ(loaded.scheme, "file");
  EXPECT_TRUE(loaded.params.empty());
  EXPECT_EQ(loaded.netlist.num_inputs(), original.num_inputs());
}

TEST(SchemeRegistry, WriteLockedCircuitReportsFailures) {
  const netlist::Netlist original = netlist::make_c17();
  const core::LockedCircuit locked =
      lock::lock_with("rll", original, lock::make_options(1, {}, "keys=4"));
  EXPECT_THROW(
      lock::write_locked_circuit(locked, "/nonexistent-dir/x/y.bench"),
      std::runtime_error);
}

TEST(SchemeRegistry, CanonicalParamsAreReproducible) {
  const netlist::Netlist original = netlist::make_circuit("c432", 2);
  // Defaults are materialized into the canonical string, so provenance
  // fully determines the lock (given the seed).
  const core::LockedCircuit a =
      lock::lock_with("full-lock", original, lock::make_options(5));
  EXPECT_NE(a.params.find("sizes=16"), std::string::npos);
  EXPECT_NE(a.params.find("topology=banyan"), std::string::npos);
  const core::LockedCircuit b = lock::lock_with(
      "full-lock", original, lock::make_options(5, {}, a.params));
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.correct_key, b.correct_key);
}

}  // namespace
}  // namespace fl
