// Structural Verilog writer.
#include <gtest/gtest.h>

#include "core/full_lock.h"
#include "netlist/profiles.h"
#include "netlist/verilog_io.h"

namespace fl::netlist {
namespace {

TEST(VerilogIo, C17Shape) {
  const Netlist c17 = make_c17();
  const std::string v = write_verilog_string(c17, "c17");
  EXPECT_NE(v.find("module c17("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // 6 NAND gates -> 6 inverted-AND assigns.
  std::size_t count = 0, pos = 0;
  while ((pos = v.find("~(", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 6u);
  // Numeric ISCAS names must be sanitized into legal identifiers.
  EXPECT_EQ(v.find("input 1;"), std::string::npos);
  EXPECT_NE(v.find("input n_1;"), std::string::npos);
}

TEST(VerilogIo, AllGateTypesEmit) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId s = n.add_input("sel");
  const GateId c1 = n.add_const(true);
  const GateId g_and = n.add_gate(GateType::kAnd, {a, b}, "g_and");
  const GateId g_nor = n.add_gate(GateType::kNor, {a, b, c1}, "g_nor");
  const GateId g_xnor = n.add_gate(GateType::kXnor, {g_and, g_nor}, "g_xnor");
  const GateId g_mux = n.add_gate(GateType::kMux, {s, g_xnor, a}, "g_mux");
  const GateId g_not = n.add_gate(GateType::kNot, {g_mux}, "g_not");
  n.mark_output(g_not, "y");
  const std::string v = write_verilog_string(n, "all_gates");
  EXPECT_NE(v.find("assign g_and = a & b;"), std::string::npos);
  EXPECT_NE(v.find("~(a | b |"), std::string::npos);
  EXPECT_NE(v.find("sel ? a : g_xnor;"), std::string::npos);
  EXPECT_NE(v.find("= 1'b1;"), std::string::npos);
  EXPECT_NE(v.find("assign g_not = ~g_mux;"), std::string::npos);
}

TEST(VerilogIo, KeyInputsAnnotated) {
  const Netlist original = make_circuit("c432", 55);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const std::string v = write_verilog_string(locked.netlist);
  EXPECT_NE(v.find("// key bit"), std::string::npos);
}

TEST(VerilogIo, InputDrivenOutputGetsOwnPort) {
  Netlist n;
  const GateId a = n.add_input("a");
  n.mark_output(a, "a");  // pass-through: port must not clash with input
  const std::string v = write_verilog_string(n, "wire_through");
  EXPECT_NE(v.find("output a_out;"), std::string::npos);
  EXPECT_NE(v.find("assign a_out = a;"), std::string::npos);
}

TEST(VerilogIo, DuplicateOutputPortsDisambiguated) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kNot, {a}, "y");
  n.mark_output(g, "y");
  n.mark_output(g, "y");  // same net, same requested name
  const std::string v = write_verilog_string(n, "dup");
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("output y_out;"), std::string::npos);
}

}  // namespace
}  // namespace fl::netlist
