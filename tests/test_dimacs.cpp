// DIMACS CNF I/O.
#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/ksat.h"

namespace fl::sat {
namespace {

TEST(Dimacs, ParseSimple) {
  const Cnf cnf = read_dimacs_string("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], pos(0));
  EXPECT_EQ(cnf.clauses[0][1], neg(1));
}

TEST(Dimacs, RoundTrip) {
  KSatConfig config;
  config.num_vars = 25;
  config.num_clauses = 100;
  config.seed = 12;
  const Cnf cnf = random_ksat(config);
  const Cnf again = read_dimacs_string(write_dimacs_string(cnf));
  ASSERT_EQ(again.num_vars, cnf.num_vars);
  ASSERT_EQ(again.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(again.clauses[i], cnf.clauses[i]);
  }
}

TEST(Dimacs, MultiClausePerLineAndMissingTerminator) {
  const Cnf cnf = read_dimacs_string("p cnf 2 2\n1 0 -1 2\n");
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
}

TEST(Dimacs, HeaderlessInputInfersVars) {
  const Cnf cnf = read_dimacs_string("1 -5 0\n");
  EXPECT_EQ(cnf.num_vars, 5);
}

TEST(Dimacs, BadFormatRejected) {
  EXPECT_THROW(read_dimacs_string("p sat 3 2\n"), std::runtime_error);
}

TEST(Dimacs, RatioHelper) {
  Cnf cnf;
  cnf.num_vars = 10;
  for (int i = 0; i < 43; ++i) cnf.add({pos(i % 10)});
  EXPECT_NEAR(cnf.clause_to_var_ratio(), 4.3, 1e-9);
}

}  // namespace
}  // namespace fl::sat
