// DIMACS CNF I/O.
#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/ksat.h"

namespace fl::sat {
namespace {

TEST(Dimacs, ParseSimple) {
  const Cnf cnf = read_dimacs_string("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], pos(0));
  EXPECT_EQ(cnf.clauses[0][1], neg(1));
}

TEST(Dimacs, RoundTrip) {
  KSatConfig config;
  config.num_vars = 25;
  config.num_clauses = 100;
  config.seed = 12;
  const Cnf cnf = random_ksat(config);
  const Cnf again = read_dimacs_string(write_dimacs_string(cnf));
  ASSERT_EQ(again.num_vars, cnf.num_vars);
  ASSERT_EQ(again.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(again.clauses[i], cnf.clauses[i]);
  }
}

TEST(Dimacs, MultiClausePerLineAndMissingTerminator) {
  const Cnf cnf = read_dimacs_string("p cnf 2 2\n1 0 -1 2\n");
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
}

TEST(Dimacs, HeaderlessInputInfersVars) {
  const Cnf cnf = read_dimacs_string("1 -5 0\n");
  EXPECT_EQ(cnf.num_vars, 5);
}

TEST(Dimacs, BadFormatRejected) {
  EXPECT_THROW(read_dimacs_string("p sat 3 2\n"), std::runtime_error);
}

TEST(Dimacs, SatlibPercentTerminatorStopsParse) {
  // SATLIB distributes uf*/uuf* files with a '%' line and a trailing "0"
  // padding line after the last clause.
  const Cnf cnf = read_dimacs_string("p cnf 3 2\n1 2 0\n-1 3 0\n%\n0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  EXPECT_EQ(cnf.clauses.size(), 2u);
}

TEST(Dimacs, PercentTokenMidLineAlsoTerminates) {
  const Cnf cnf = read_dimacs_string("p cnf 2 1\n1 -2 0 % 0\n");
  EXPECT_EQ(cnf.clauses.size(), 1u);
}

TEST(Dimacs, MalformedHeadersAreLineNumbered) {
  for (const char* bad : {"p cnf -3 2\n", "p cnf 3\n", "p cnf 3 2 junk\n",
                          "p cnf x y\n", "p cnf 0 5\n"}) {
    try {
      read_dimacs_string(bad);
      FAIL() << "expected header error for: " << bad;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
          << bad;
    }
  }
}

TEST(Dimacs, DuplicateHeaderRejected) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\np cnf 2 1\n1 0\n"),
               std::runtime_error);
}

TEST(Dimacs, LiteralExceedingDeclaredCountIsLineNumbered) {
  try {
    read_dimacs_string("p cnf 3 2\n1 2 0\n1 7 0\n");
    FAIL() << "expected out-of-range literal error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  }
}

TEST(Dimacs, NonNumericTokenRejectedInStrictMode) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 2x 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 foo 0\n"), std::runtime_error);
}

TEST(Dimacs, LenientModeRestoresPermissiveBehavior) {
  // Out-of-header literals grow the variable count; unparsable tokens end
  // their line silently — the historical behavior attack scripts relied on.
  const Cnf grown = read_dimacs_string("p cnf 3 2\n1 2 0\n1 7 0\n", true);
  EXPECT_EQ(grown.num_vars, 7);
  EXPECT_EQ(grown.clauses.size(), 2u);
  const Cnf skipped = read_dimacs_string("p cnf 2 1\n1 foo 2 0\n", true);
  ASSERT_EQ(skipped.clauses.size(), 1u);
  EXPECT_EQ(skipped.clauses[0].size(), 1u);  // line abandoned at 'foo'
}

TEST(Dimacs, LiteralMagnitudeOverflowAlwaysRejected) {
  EXPECT_THROW(read_dimacs_string("99999999999 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("99999999999 0\n", true),
               std::runtime_error);
}

TEST(Dimacs, RatioHelper) {
  Cnf cnf;
  cnf.num_vars = 10;
  for (int i = 0; i < 43; ++i) cnf.add({pos(i % 10)});
  EXPECT_NEAR(cnf.clause_to_var_ratio(), 4.3, 1e-9);
}

}  // namespace
}  // namespace fl::sat
