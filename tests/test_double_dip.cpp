// DoubleDIP: 2-DIP pruning attack.
#include <gtest/gtest.h>

#include "attacks/double_dip.h"
#include "attacks/oracle.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

TEST(DoubleDip, BreaksRll) {
  const Netlist original = netlist::make_circuit("c432", 151);
  lock::RllConfig config;
  config.num_keys = 16;
  const LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 60.0;
  const DoubleDipResult result = DoubleDip(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*sat=*/true));
}

TEST(DoubleDip, NoTwoDipExistsForPureSarlock) {
  // A pure point function errs on exactly one input per wrong key, so two
  // distinct wrong keys can never agree on a wrong output: the 2-DIP
  // condition is UNSAT immediately and the attack must fall back cleanly.
  const Netlist original = netlist::make_circuit("c432", 152);
  lock::SarLockConfig config;
  config.num_keys = 6;
  const LockedCircuit locked = lock::sarlock_lock(original, config);
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 120.0;
  const DoubleDipResult result = DoubleDip(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_EQ(result.iterations, 0u);  // no 2-DIP on a pure point function
  EXPECT_GT(result.fallback_iterations, 0u);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   2, /*sat=*/true));
}

TEST(DoubleDip, UsesTwoDipsOnBroadlyCorruptingSchemes) {
  // RLL wrong keys corrupt broadly, so distinct agreeing-wrong pairs exist
  // and real 2-DIP queries fire.
  const Netlist original = netlist::make_circuit("c499", 154);
  lock::RllConfig config;
  config.num_keys = 16;
  const LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 120.0;
  const DoubleDipResult result = DoubleDip(options).run(locked, oracle);
  ASSERT_EQ(result.status, AttackStatus::kSuccess);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   4, /*sat=*/true));
}

TEST(DoubleDip, FullLockStillResists) {
  const Netlist original = netlist::make_circuit("c432", 153);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Oracle oracle(original);
  AttackOptions options;
  options.timeout_s = 1.0;
  const DoubleDipResult result = DoubleDip(options).run(locked, oracle);
  // Either times out (expected at this budget) or, if it finishes, the key
  // must be right.
  if (result.status == AttackStatus::kSuccess) {
    EXPECT_TRUE(
        core::verify_unlocks(original, locked.netlist, result.key, 16, 3));
  } else {
    EXPECT_EQ(result.status, AttackStatus::kTimeout);
  }
  // Truncated or not, the key is sized to the key width for consumers that
  // index it unconditionally.
  EXPECT_EQ(result.key.size(), locked.netlist.num_keys());
}

TEST(DoubleDip, KeylessCircuitTrivial) {
  const Netlist c17 = netlist::make_c17();
  LockedCircuit unlocked;
  unlocked.netlist = c17;
  unlocked.scheme = "none";
  const Oracle oracle(c17);
  const DoubleDipResult result = DoubleDip().run(unlocked, oracle);
  EXPECT_EQ(result.status, AttackStatus::kSuccess);
}

}  // namespace
}  // namespace fl::attacks
