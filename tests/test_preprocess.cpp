// SatELite-style preprocessing wrapper (sat/preprocess.h): differential
// fuzz against the plain solver, model extension over eliminated variables,
// frozen-variable protection, and misuse detection.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "sat/preprocess.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

// Random k-SAT instance: clause widths 1..3, biased toward 3. The
// clause-to-variable ratio sweeps across the SAT/UNSAT transition so the
// fuzz exercises both answers.
std::vector<Clause> random_cnf(std::mt19937_64& rng, int num_vars,
                               int num_clauses) {
  std::vector<Clause> clauses;
  clauses.reserve(num_clauses);
  for (int c = 0; c < num_clauses; ++c) {
    const int width = 1 + static_cast<int>(rng() % 3 == 0 ? rng() % 2 : 2);
    Clause clause;
    for (int l = 0; l < width; ++l) {
      const Var v = static_cast<Var>(rng() % num_vars);
      clause.push_back(Lit(v, (rng() & 1) != 0));
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool satisfies_all(const std::vector<Clause>& clauses,
                   const std::vector<bool>& model) {
  for (const Clause& clause : clauses) {
    bool sat = false;
    for (const Lit l : clause) {
      if (model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST(Preprocess, RandomCnfsAgreeWithPlainSolver) {
  // Differential fuzz: preprocessing must preserve satisfiability, and the
  // extended model must satisfy every *original* clause — including the
  // ones variable elimination deleted.
  std::mt19937_64 rng(2024);
  int sat_seen = 0;
  int unsat_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int num_vars = 12 + static_cast<int>(rng() % 16);
    const int num_clauses =
        static_cast<int>(num_vars * (2.5 + 0.1 * (trial % 30)));
    const std::vector<Clause> clauses = random_cnf(rng, num_vars, num_clauses);

    Solver plain;
    for (int v = 0; v < num_vars; ++v) plain.new_var();
    for (const Clause& c : clauses) plain.add_clause(c);

    Solver inner;
    PreprocessSolver pp(inner);
    for (int v = 0; v < num_vars; ++v) pp.new_var();
    for (const Clause& c : clauses) pp.add_clause(c);

    const LBool expected = plain.solve();
    const LBool got = pp.solve();
    ASSERT_EQ(got, expected) << "trial " << trial;
    if (expected == LBool::kTrue) {
      ++sat_seen;
      const std::vector<bool> model = pp.model();
      ASSERT_EQ(model.size(), static_cast<std::size_t>(num_vars));
      EXPECT_TRUE(satisfies_all(clauses, model)) << "trial " << trial;
      // value_of agrees with the extended model, eliminated vars included.
      for (int v = 0; v < num_vars; ++v) {
        EXPECT_EQ(pp.value_of(v), model[v]) << "trial " << trial;
      }
    } else {
      ++unsat_seen;
    }
  }
  // The ratio sweep must actually have crossed the transition.
  EXPECT_GT(sat_seen, 0);
  EXPECT_GT(unsat_seen, 0);
}

TEST(Preprocess, AssumptionsOverFrozenVarsMatchPlainSolver) {
  // Frozen variables survive elimination, so later assumptions over them
  // restrict exactly the same solution space as in the plain solver.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_vars = 14 + static_cast<int>(rng() % 8);
    const std::vector<Clause> clauses = random_cnf(rng, num_vars, num_vars * 3);

    Solver plain;
    for (int v = 0; v < num_vars; ++v) plain.new_var();
    for (const Clause& c : clauses) plain.add_clause(c);

    Solver inner;
    PreprocessSolver pp(inner);
    for (int v = 0; v < num_vars; ++v) pp.new_var();
    pp.freeze(0);
    pp.freeze(1);
    for (const Clause& c : clauses) pp.add_clause(c);

    for (int combo = 0; combo < 4; ++combo) {
      const std::vector<Lit> assumptions = {Lit(0, (combo & 1) != 0),
                                            Lit(1, (combo & 2) != 0)};
      EXPECT_EQ(pp.solve(assumptions), plain.solve(assumptions))
          << "trial " << trial << " combo " << combo;
      EXPECT_FALSE(pp.is_eliminated(0));
      EXPECT_FALSE(pp.is_eliminated(1));
    }
  }
}

TEST(Preprocess, IncrementalClausesAfterFlushKeepAgreeing) {
  // The attack engine's usage pattern: preprocess the base formula once,
  // then keep adding clauses over frozen interface variables.
  std::mt19937_64 rng(99);
  const int num_vars = 20;
  const std::vector<Clause> base = random_cnf(rng, num_vars, 50);

  Solver plain;
  for (int v = 0; v < num_vars; ++v) plain.new_var();
  for (const Clause& c : base) plain.add_clause(c);

  Solver inner;
  PreprocessSolver pp(inner);
  for (int v = 0; v < num_vars; ++v) pp.new_var();
  for (int v = 0; v < 6; ++v) pp.freeze(v);
  for (const Clause& c : base) pp.add_clause(c);

  ASSERT_EQ(pp.solve(), plain.solve());
  EXPECT_TRUE(pp.flushed());
  for (int round = 0; round < 8; ++round) {
    Clause extra;
    for (int l = 0; l < 2; ++l) {
      extra.push_back(Lit(static_cast<Var>(rng() % 6), (rng() & 1) != 0));
    }
    plain.add_clause(extra);
    pp.add_clause(extra);
    EXPECT_EQ(pp.solve(), plain.solve()) << "round " << round;
  }
}

// A 3-variable formula where x0 has one positive and one negative
// occurrence: bounded variable elimination always accepts it (one
// resolvent, two occurrences), unless it is frozen.
std::vector<Clause> elimination_bait() {
  return {{pos(0), pos(1)}, {neg(0), pos(2)}, {pos(1), pos(2)}};
}

TEST(Preprocess, EliminatedVariableUseThrows) {
  Solver inner;
  PreprocessSolver pp(inner);
  for (int v = 0; v < 3; ++v) pp.new_var();
  for (const Clause& c : elimination_bait()) pp.add_clause(c);
  ASSERT_EQ(pp.solve(), LBool::kTrue);
  ASSERT_TRUE(pp.is_eliminated(0));
  EXPECT_GT(pp.preprocess_stats().eliminated_vars, 0u);
  // Mentioning an eliminated variable after the flush would silently change
  // the formula's meaning; both entry points must refuse.
  EXPECT_THROW(pp.add_clause({pos(0)}), std::logic_error);
  const std::vector<Lit> assumption = {pos(0)};
  EXPECT_THROW(pp.solve(assumption), std::logic_error);
  // The extended model still assigns the eliminated variable consistently:
  // x0=true is needed iff {x0, x1} is otherwise unsatisfied.
  const std::vector<bool> model = pp.model();
  EXPECT_TRUE(satisfies_all(elimination_bait(), model));
}

TEST(Preprocess, FreezeProtectsFromElimination) {
  Solver inner;
  PreprocessSolver pp(inner);
  for (int v = 0; v < 3; ++v) pp.new_var();
  pp.freeze(0);
  for (const Clause& c : elimination_bait()) pp.add_clause(c);
  ASSERT_EQ(pp.solve(), LBool::kTrue);
  EXPECT_FALSE(pp.is_eliminated(0));
  // Both phases of the frozen variable stay queryable.
  const std::vector<Lit> pos0 = {pos(0)};
  const std::vector<Lit> neg0 = {neg(0)};
  EXPECT_EQ(pp.solve(pos0), LBool::kTrue);
  EXPECT_EQ(pp.solve(neg0), LBool::kTrue);
}

TEST(Preprocess, MisuseThrows) {
  // The wrapper refuses a pre-populated inner solver (ids would not
  // coincide) and freezing after the formula was already committed.
  Solver dirty;
  dirty.new_var();
  EXPECT_THROW(PreprocessSolver wrapper(dirty), std::invalid_argument);

  Solver inner;
  PreprocessSolver pp(inner);
  pp.new_var();
  pp.add_clause({pos(0)});
  ASSERT_EQ(pp.solve(), LBool::kTrue);
  EXPECT_THROW(pp.freeze(0), std::logic_error);
}

TEST(Preprocess, StatsAccountForSimplification) {
  // On a redundant formula the passes visibly fire: subsumed clauses,
  // root-level units, and eliminated variables all show up in the stats.
  Solver inner;
  PreprocessSolver pp(inner);
  for (int v = 0; v < 4; ++v) pp.new_var();
  pp.add_clause({pos(3)});                   // root unit
  pp.add_clause({pos(1), pos(2)});
  pp.add_clause({pos(1), pos(2), neg(0)});   // subsumed by the previous
  pp.add_clause({pos(0), pos(1)});           // x0: 1 pos / 1 neg occurrence
  ASSERT_EQ(pp.solve(), LBool::kTrue);
  const PreprocessStats& stats = pp.preprocess_stats();
  EXPECT_TRUE(stats.ran);
  EXPECT_GT(stats.fixed_vars, 0u);
  EXPECT_GT(stats.removed_clauses, 0u);
  EXPECT_LT(stats.output_clauses, stats.input_clauses);
  EXPECT_TRUE(satisfies_all({{pos(3)}, {pos(1), pos(2)}, {pos(0), pos(1)}},
                            pp.model()));
}

}  // namespace
}  // namespace fl::sat
