// Verification & corruption metrics.
#include <gtest/gtest.h>

#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace fl::core {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

TEST(VerifyUnlocks, AcceptsIdentity) {
  const Netlist c17 = netlist::make_c17();
  EXPECT_TRUE(verify_unlocks(c17, c17, {}, 8, 1, /*sat=*/true));
}

TEST(VerifyUnlocks, RejectsWrongKey) {
  const Netlist original = netlist::make_circuit("c432", 3);
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({8}));
  // Inverting the whole key scrambles routing, inverters and LUT tables;
  // use the complete SAT check so the verdict is exact.
  std::vector<bool> wrong = locked.correct_key;
  wrong.flip();
  EXPECT_FALSE(
      verify_unlocks(original, locked.netlist, wrong, 16, 1, /*sat=*/true));
  // And statistically: random wrong keys corrupt at least sometimes.
  const CorruptionStats stats = output_corruption(original, locked, 16, 4, 9);
  EXPECT_GT(stats.mean_error_rate, 0.0);
}

TEST(VerifyUnlocks, InterfaceMismatchIsFalse) {
  const Netlist c17 = netlist::make_c17();
  const Netlist other = netlist::make_circuit("i4", 1);
  EXPECT_FALSE(verify_unlocks(c17, other, {}, 1, 1));
}

TEST(ErrorRate, ZeroForCorrectKey) {
  const Netlist original = netlist::make_circuit("c499", 4);
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({8}));
  EXPECT_EQ(error_rate(original, locked.netlist, locked.correct_key, 8, 2),
            0.0);
}

TEST(ErrorRate, HalfForInvertedOutput) {
  // locked = original with one output inverted -> that output is always
  // wrong; with 2 outputs the bit error rate is 0.5.
  const Netlist c17 = netlist::make_c17();
  Netlist broken = c17;
  const GateId inv =
      broken.add_gate(GateType::kNot, {broken.outputs()[0].gate});
  broken.set_output_gate(0, inv);
  const double e = error_rate(c17, broken, {}, 16, 3);
  EXPECT_NEAR(e, 0.5, 1e-9);
}

TEST(Corruption, FullLockBeatsSarlock) {
  // The paper's §2 property (2): DPLL-hard schemes corrupt heavily, point
  // functions barely.
  const Netlist original = netlist::make_circuit("c880", 5);
  const LockedCircuit fulllock =
      full_lock(original, FullLockConfig::with_plrs({16}));
  lock::SarLockConfig sar;
  sar.num_keys = 12;
  const LockedCircuit sarlock = lock::sarlock_lock(original, sar);

  const CorruptionStats cf = output_corruption(original, fulllock, 16, 4, 6);
  const CorruptionStats cs = output_corruption(original, sarlock, 16, 4, 6);
  EXPECT_GT(cf.mean_error_rate, 10 * std::max(cs.mean_error_rate, 1e-6));
}

TEST(Corruption, StatsRangesSane) {
  const Netlist original = netlist::make_circuit("c432", 6);
  lock::RllConfig rll;
  rll.num_keys = 16;
  const LockedCircuit locked = lock::rll_lock(original, rll);
  const CorruptionStats stats = output_corruption(original, locked, 20, 4, 7);
  EXPECT_GT(stats.keys_sampled, 0);
  EXPECT_LE(stats.min_error_rate, stats.mean_error_rate);
  EXPECT_GE(stats.max_error_rate, stats.mean_error_rate);
  EXPECT_LE(stats.max_error_rate, 1.0);
}

}  // namespace
}  // namespace fl::core
