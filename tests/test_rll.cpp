// RLL-specific claims. Generic lock invariants (unlock, determinism, key
// naming, flipped-key inequivalence) run for every registry scheme in
// test_lock_properties.cpp.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/rll.h"
#include "netlist/profiles.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(Rll, MixesXorAndXnor) {
  const Netlist original = netlist::make_circuit("c880", 43);
  RllConfig config;
  config.num_keys = 32;
  const core::LockedCircuit locked = rll_lock(original, config);
  // XNOR key gates need key=1, XOR need key=0; with 32 draws both appear.
  int ones = 0;
  for (const bool b : locked.correct_key) ones += b ? 1 : 0;
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, 32);
}

TEST(Rll, KeyWidthMatchesRequest) {
  const Netlist original = netlist::make_circuit("c432", 41);
  RllConfig config;
  config.num_keys = 24;
  EXPECT_EQ(rll_lock(original, config).key_bits(), 24u);
}

TEST(Rll, TooManyKeysThrows) {
  const Netlist c17 = netlist::make_c17();
  RllConfig config;
  config.num_keys = 500;
  EXPECT_THROW(rll_lock(c17, config), std::invalid_argument);
}

}  // namespace
}  // namespace fl::lock
