// RLL baseline locker.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/rll.h"
#include "netlist/profiles.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(Rll, CorrectKeyUnlocks) {
  const Netlist original = netlist::make_circuit("c432", 41);
  RllConfig config;
  config.num_keys = 24;
  const core::LockedCircuit locked = rll_lock(original, config);
  EXPECT_EQ(locked.scheme, "rll");
  EXPECT_EQ(locked.key_bits(), 24u);
  EXPECT_TRUE(core::verify_unlocks(original, locked, 16, 1, /*sat=*/true));
}

TEST(Rll, WrongKeyCorrupts) {
  const Netlist original = netlist::make_circuit("c432", 42);
  RllConfig config;
  config.num_keys = 16;
  const core::LockedCircuit locked = rll_lock(original, config);
  std::vector<bool> wrong = locked.correct_key;
  wrong.flip();
  EXPECT_FALSE(core::verify_unlocks(original, locked.netlist, wrong, 16, 2,
                                    /*sat=*/true));
}

TEST(Rll, MixesXorAndXnor) {
  const Netlist original = netlist::make_circuit("c880", 43);
  RllConfig config;
  config.num_keys = 32;
  const core::LockedCircuit locked = rll_lock(original, config);
  // XNOR key gates need key=1, XOR need key=0; with 32 draws both appear.
  int ones = 0;
  for (const bool b : locked.correct_key) ones += b ? 1 : 0;
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, 32);
}

TEST(Rll, KeysFollowBenchConvention) {
  const Netlist original = netlist::make_circuit("c432", 44);
  RllConfig config;
  config.num_keys = 4;
  const core::LockedCircuit locked = rll_lock(original, config);
  for (const netlist::GateId k : locked.netlist.keys()) {
    EXPECT_TRUE(locked.netlist.gate(k).name.starts_with("keyinput"));
  }
}

TEST(Rll, TooManyKeysThrows) {
  const Netlist c17 = netlist::make_c17();
  RllConfig config;
  config.num_keys = 500;
  EXPECT_THROW(rll_lock(c17, config), std::invalid_argument);
}

TEST(Rll, Deterministic) {
  const Netlist original = netlist::make_circuit("c499", 45);
  RllConfig config;
  config.num_keys = 8;
  config.seed = 77;
  EXPECT_EQ(rll_lock(original, config).correct_key,
            rll_lock(original, config).correct_key);
}

}  // namespace
}  // namespace fl::lock
