// Random k-SAT generator properties.
#include <gtest/gtest.h>

#include "sat/ksat.h"

namespace fl::sat {
namespace {

TEST(KSat, ShapeIsExact) {
  KSatConfig config;
  config.num_vars = 40;
  config.num_clauses = 170;
  config.k = 3;
  config.seed = 9;
  const Cnf cnf = random_ksat(config);
  EXPECT_EQ(cnf.num_vars, 40);
  ASSERT_EQ(cnf.clauses.size(), 170u);
  for (const Clause& c : cnf.clauses) {
    ASSERT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c[0].var(), c[1].var());
    EXPECT_NE(c[0].var(), c[2].var());
    EXPECT_NE(c[1].var(), c[2].var());
    for (const Lit l : c) {
      EXPECT_GE(l.var(), 0);
      EXPECT_LT(l.var(), 40);
    }
  }
}

TEST(KSat, Deterministic) {
  KSatConfig config;
  config.seed = 123;
  const Cnf a = random_ksat(config);
  const Cnf b = random_ksat(config);
  ASSERT_EQ(a.clauses.size(), b.clauses.size());
  for (std::size_t i = 0; i < a.clauses.size(); ++i) {
    EXPECT_EQ(a.clauses[i], b.clauses[i]);
  }
}

TEST(KSat, PolaritiesRoughlyBalanced) {
  KSatConfig config;
  config.num_vars = 50;
  config.num_clauses = 2000;
  config.seed = 5;
  const Cnf cnf = random_ksat(config);
  std::size_t negs = 0, total = 0;
  for (const Clause& c : cnf.clauses) {
    for (const Lit l : c) {
      negs += l.negated() ? 1 : 0;
      ++total;
    }
  }
  const double frac = static_cast<double>(negs) / total;
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

TEST(KSat, K2AndK4Supported) {
  KSatConfig config;
  config.k = 2;
  config.num_clauses = 10;
  EXPECT_EQ(random_ksat(config).clauses[0].size(), 2u);
  config.k = 4;
  EXPECT_EQ(random_ksat(config).clauses[0].size(), 4u);
}

TEST(KSat, InvalidConfigsRejected) {
  KSatConfig config;
  config.k = 10;
  config.num_vars = 5;
  EXPECT_THROW(random_ksat(config), std::invalid_argument);
  config = {};
  config.num_clauses = 0;
  EXPECT_THROW(random_ksat(config), std::invalid_argument);
}

}  // namespace
}  // namespace fl::sat
