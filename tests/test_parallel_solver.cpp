// Cooperative parallel SAT: clause-sharing soundness, cube-and-conquer
// partitioning, and the differential guarantees the attack relies on (a
// parallel solve must agree with a sequential solve on every instance).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/profiles.h"
#include "sat/ksat.h"
#include "sat/parallel.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

bool satisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (const Lit l : c) {
      if (model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

void load(SolverIface& solver, const Cnf& cnf) {
  for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
  for (const Clause& c : cnf.clauses) solver.add_clause(c);
}

Cnf phase_transition_cnf(int num_vars, std::uint64_t seed) {
  KSatConfig config;
  config.num_vars = num_vars;
  config.num_clauses = static_cast<int>(num_vars * 4.26);
  config.seed = seed;
  return random_ksat(config);
}

TEST(ParMode, ParseRoundTrips) {
  for (const ParMode mode :
       {ParMode::kRace, ParMode::kShare, ParMode::kCubes}) {
    const auto parsed = parse_par_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_par_mode("portfolio").has_value());
  EXPECT_FALSE(parse_par_mode("").has_value());
}

TEST(BuildCubes, PartitionsTheAssignmentSpace) {
  const std::vector<Var> vars = {3, 7, 11};
  const std::vector<std::vector<Lit>> cubes = build_cubes(vars);
  ASSERT_EQ(cubes.size(), 8u);
  // Every total assignment of the split variables is consistent with
  // exactly one cube: the cubes partition the space.
  for (unsigned assignment = 0; assignment < 8; ++assignment) {
    int consistent = 0;
    for (const std::vector<Lit>& cube : cubes) {
      ASSERT_EQ(cube.size(), vars.size());
      bool matches = true;
      for (const Lit l : cube) {
        std::size_t j = 0;
        while (vars[j] != l.var()) ++j;
        const bool value = ((assignment >> j) & 1u) != 0;
        if (value == l.negated()) matches = false;
      }
      if (matches) ++consistent;
    }
    EXPECT_EQ(consistent, 1) << "assignment " << assignment;
  }
}

TEST(ClausePool, DedupsAcrossProducersAndSkipsOwnShard) {
  ClausePool pool(3, 16);
  const std::vector<Lit> c1 = {pos(0), neg(1)};
  const std::vector<Lit> c2 = {pos(2), pos(3), neg(4)};
  EXPECT_TRUE(pool.publish(0, c1, 2));
  EXPECT_FALSE(pool.publish(1, c1, 2));  // duplicate, any producer
  EXPECT_TRUE(pool.publish(1, c2, 2));

  // A consumer never re-imports from its own shard.
  std::size_t delivered = 0;
  const auto count = [&](std::span<const Lit>, std::uint32_t) { ++delivered; };
  EXPECT_EQ(pool.consume(0, 100, count), 1u);  // sees c2 only
  EXPECT_EQ(pool.consume(1, 100, count), 1u);  // sees c1 only
  EXPECT_EQ(pool.consume(2, 100, count), 2u);  // sees both
  EXPECT_EQ(delivered, 4u);
  // Cursors advanced: nothing new on a second pass.
  EXPECT_EQ(pool.consume(2, 100, count), 0u);

  const ClausePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.consumed, 4u);
}

TEST(ClausePool, RespectsBudgetAndCapacity) {
  ClausePool pool(2, 2);  // tiny shards: 2 clauses per producer
  for (int i = 0; i < 4; ++i) {
    const std::vector<Lit> c = {pos(i), neg(i + 1)};
    pool.publish(0, c, 2);
  }
  EXPECT_EQ(pool.stats().published, 2u);
  EXPECT_EQ(pool.stats().overflow, 2u);

  std::size_t delivered = 0;
  const auto count = [&](std::span<const Lit>, std::uint32_t) { ++delivered; };
  EXPECT_EQ(pool.consume(1, 1, count), 1u);  // budget cuts the batch
  EXPECT_EQ(pool.consume(1, 8, count), 1u);  // remainder next call
  EXPECT_EQ(delivered, 2u);
}

TEST(ParallelSolver, Width1MatchesPlainSolver) {
  const Cnf cnf = phase_transition_cnf(80, 5);
  Solver seq;
  load(seq, cnf);
  const LBool expected = seq.solve();

  ParallelConfig config;
  config.num_workers = 1;
  ParallelSolver par(config);
  load(par, cnf);
  EXPECT_EQ(par.solve(), expected);
  EXPECT_EQ(par.parallel_stats().inline_solves, 1u);
  EXPECT_EQ(par.pool(), nullptr);
  if (expected == LBool::kTrue) {
    EXPECT_EQ(par.model(), seq.model());
  }
}

TEST(ParallelSolver, ShareAgreesWithSequentialAcrossSeeds) {
  // The core differential guarantee: importing shared clauses must never
  // flip a SAT/UNSAT answer (every shared clause is a logical consequence
  // of the common formula). Phase-transition instances mix both outcomes.
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    const Cnf cnf = phase_transition_cnf(90, seed);
    Solver seq;
    load(seq, cnf);
    const LBool expected = seq.solve();
    ASSERT_NE(expected, LBool::kUndef);

    ParallelConfig config;
    config.num_workers = 4;
    config.mode = ParMode::kShare;
    config.inline_budget = 0;  // force the fan-out path under test
    ParallelSolver par(config);
    load(par, cnf);
    const LBool got = par.solve();
    EXPECT_EQ(got, expected) << "seed " << seed;
    if (got == LBool::kTrue) {
      EXPECT_TRUE(satisfies(cnf, par.model())) << "seed " << seed;
    }
  }
}

TEST(ParallelSolver, SharedClausesAreLogicalConsequences) {
  // Stronger than the differential: every clause still buffered in the pool
  // must individually follow from the formula (formula AND NOT C is UNSAT).
  const Cnf cnf = phase_transition_cnf(100, 1);
  ParallelConfig config;
  config.num_workers = 4;
  config.mode = ParMode::kShare;
  config.inline_budget = 0;  // force the fan-out path under test
  ParallelSolver par(config);
  load(par, cnf);
  par.solve();
  ASSERT_NE(par.pool(), nullptr);
  const auto shared = par.pool()->snapshot();
  ASSERT_GT(par.stats().exported_clauses, 0u);
  for (const auto& [clause, lbd] : shared) {
    Solver check;
    load(check, cnf);
    for (const Lit l : clause) check.add_clause({~l});
    EXPECT_EQ(check.solve(), LBool::kFalse)
        << "shared clause is not a consequence of the formula";
  }
}

TEST(ParallelSolver, CubesAgreeWithSequentialAcrossSeeds) {
  // Cube-and-conquer must return the sequential answer whether the instance
  // is SAT (some cube finds a model) or UNSAT (every cube refuted).
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    const Cnf cnf = phase_transition_cnf(90, seed);
    Solver seq;
    load(seq, cnf);
    const LBool expected = seq.solve();
    ASSERT_NE(expected, LBool::kUndef);

    ParallelConfig config;
    config.num_workers = 4;
    config.mode = ParMode::kCubes;
    config.cube_depth = 3;
    config.inline_budget = 0;  // force the fan-out path under test
    ParallelSolver par(config);
    load(par, cnf);
    par.set_split_candidates({0, 1, 2, 3, 4, 5});
    const LBool got = par.solve();
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(par.parallel_stats().last_num_cubes, 8u);
    if (got == LBool::kTrue) {
      EXPECT_TRUE(satisfies(cnf, par.model())) << "seed " << seed;
    } else {
      // UNSAT requires the whole partition refuted, not an early exit.
      EXPECT_EQ(par.parallel_stats().cubes_unsat, 8u) << "seed " << seed;
    }
  }
}

TEST(ParallelSolver, AdaptiveProbeKeepsEasySolvesInline) {
  // A solve that finishes inside the probe's conflict budget must never pay
  // for a fan-out: the DIP loop issues hundreds of easy solves for every
  // hard one.
  const Cnf cnf = phase_transition_cnf(60, 4);
  Solver seq;
  load(seq, cnf);
  const LBool expected = seq.solve();

  ParallelConfig config;
  config.num_workers = 4;
  config.mode = ParMode::kShare;
  config.inline_budget = 1u << 20;  // comfortably above the instance
  ParallelSolver par(config);
  load(par, cnf);
  EXPECT_EQ(par.solve(), expected);
  EXPECT_EQ(par.parallel_stats().inline_solves, 1u);
  EXPECT_EQ(par.parallel_stats().parallel_solves, 0u);
  EXPECT_EQ(par.parallel_stats().probe_escalations, 0u);
}

TEST(ParallelSolver, AdaptiveProbeEscalatesHardSolves) {
  // A probe budget the instance cannot fit in must escalate to a fan-out —
  // and the escalated solve still returns the sequential answer.
  const Cnf cnf = phase_transition_cnf(90, 2);
  Solver seq;
  load(seq, cnf);
  const LBool expected = seq.solve();
  ASSERT_NE(expected, LBool::kUndef);

  ParallelConfig config;
  config.num_workers = 4;
  config.mode = ParMode::kShare;
  config.inline_budget = 1;  // trips on the first conflict
  ParallelSolver par(config);
  load(par, cnf);
  EXPECT_EQ(par.solve(), expected);
  EXPECT_GE(par.parallel_stats().probe_escalations, 1u);
  EXPECT_EQ(par.parallel_stats().parallel_solves, 1u);
}

TEST(ParallelSolver, CallerConflictBudgetWinsOverProbe) {
  // When the caller's own conflict budget is tighter than the probe's, a
  // trip is the caller's answer (kConflictBudget), not a cue to fan out K
  // workers the caller did not budget for.
  const Cnf cnf = phase_transition_cnf(120, 5);
  ParallelConfig config;
  config.num_workers = 4;
  config.mode = ParMode::kShare;
  ParallelSolver par(config);
  load(par, cnf);
  par.set_conflict_budget(1);
  EXPECT_EQ(par.solve(), LBool::kUndef);
  EXPECT_EQ(par.last_stop_reason(), StopReason::kConflictBudget);
  EXPECT_EQ(par.parallel_stats().parallel_solves, 0u);
  EXPECT_EQ(par.parallel_stats().probe_escalations, 0u);
}

TEST(ParallelSolver, InterruptSurfacesAsStopReason) {
  const Cnf cnf = phase_transition_cnf(120, 2);
  std::atomic<bool> interrupt{true};
  ParallelConfig config;
  config.num_workers = 2;
  ParallelSolver par(config);
  load(par, cnf);
  par.set_interrupts(&interrupt, nullptr);
  EXPECT_EQ(par.solve(), LBool::kUndef);
  EXPECT_TRUE(par.last_solve_interrupted());
  EXPECT_EQ(par.last_stop_reason(), StopReason::kInterrupt);
}

TEST(ParallelSolver, DeadlineSurfacesAsStopReason) {
  const Cnf cnf = phase_transition_cnf(120, 3);
  ParallelConfig config;
  config.num_workers = 2;
  ParallelSolver par(config);
  load(par, cnf);
  par.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_EQ(par.solve(), LBool::kUndef);
  EXPECT_EQ(par.last_stop_reason(), StopReason::kDeadline);
}

TEST(ParallelSolver, AggregatesWorkerCounters) {
  const Cnf cnf = phase_transition_cnf(90, 1);
  ParallelConfig config;
  config.num_workers = 3;
  config.mode = ParMode::kShare;
  config.inline_budget = 0;  // force the fan-out path under test
  ParallelSolver par(config);
  load(par, cnf);
  par.solve();
  // Counters must cover every worker's search, not just the winner's.
  const SolverStats& stats = par.stats();
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.propagations, 0u);
  EXPECT_GE(par.parallel_stats().last_winner, 0);
  EXPECT_LT(par.parallel_stats().last_winner, 3);
}

// --- Attack-level integration: share and cubes end to end ----------------

void expect_parallel_attack_breaks(ParMode mode) {
  const netlist::Netlist original = netlist::make_circuit("c432", 90);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 60.0;
  options.portfolio = 4;
  options.par_mode = mode;
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess)
      << to_string(mode);
  EXPECT_TRUE(core::verify_unlocks(original, locked.netlist, result.key, 16,
                                   1, /*sat=*/true))
      << to_string(mode);
  // No winner index: share/cubes run one cooperating attack, not a race.
  EXPECT_EQ(result.portfolio_winner, -1);
}

TEST(ParallelAttack, ShareModeRecoversKey) {
  expect_parallel_attack_breaks(ParMode::kShare);
}

TEST(ParallelAttack, CubesModeRecoversKey) {
  expect_parallel_attack_breaks(ParMode::kCubes);
}

TEST(ParallelAttack, ShareModeTimeoutReported) {
  const netlist::Netlist original = netlist::make_circuit("c432", 96);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const attacks::Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 0.05;
  options.portfolio = 2;
  options.par_mode = ParMode::kShare;
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, attacks::AttackStatus::kTimeout);
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
}

}  // namespace
}  // namespace fl::sat
