// Parallel sweep runtime: thread pool, seed derivation, cancellation, JSONL
// sink ordering, runner arg parsing and validation, fault injection, cell
// retries, signal handling, and the serial-vs-parallel determinism
// guarantee (run under TSan in the sanitizer CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "netlist/generator.h"
#include "runtime/cancel.h"
#include "runtime/fault.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/signal.h"
#include "runtime/thread_pool.h"

namespace fl::runtime {
namespace {

TEST(Seed, SplitMixIsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Full-avalanche sanity: consecutive inputs land far apart.
  EXPECT_GT(splitmix64(1) ^ splitmix64(2), 0xFFFFFFFFull);
}

TEST(Seed, DeriveSeedIsCoordinateAndOrderSensitive) {
  const std::uint64_t a = derive_seed(7, {1, 2});
  EXPECT_EQ(a, derive_seed(7, {1, 2}));    // pure function of coordinates
  EXPECT_NE(a, derive_seed(7, {2, 1}));    // order matters
  EXPECT_NE(a, derive_seed(8, {1, 2}));    // base matters
  EXPECT_NE(a, derive_seed(7, {1, 2, 0}));  // arity matters
}

TEST(ThreadPool, RunsEveryJobAndWaitsIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // Pool stays usable after wait_idle.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(Runner, SerialAndParallelGridsProduceIdenticalResults) {
  const std::size_t n = 64;
  const auto cell = [](std::size_t i) {
    return derive_seed(3, {static_cast<std::uint64_t>(i)});
  };
  std::vector<std::uint64_t> serial(n, 0), parallel(n, 0);
  run_grid(n, 1, [&](std::size_t i) { serial[i] = cell(i); });
  run_grid(n, 4, [&](std::size_t i) { parallel[i] = cell(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Runner, FirstExceptionPropagatesAfterDrain) {
  std::atomic<int> ran{0};
  const auto body = [&](std::size_t i) {
    ran.fetch_add(1);
    if (i == 3) throw std::runtime_error("cell 3 failed");
  };
  EXPECT_THROW(run_grid(8, 1, body), std::runtime_error);
  ran.store(0);
  EXPECT_THROW(run_grid(8, 4, body), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the grid drains; remaining cells still ran
}

TEST(Runner, ResolveJobsPrecedence) {
  EXPECT_EQ(resolve_jobs(3), 3);  // explicit request wins
  ::setenv("FL_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(0), 5);
  EXPECT_EQ(resolve_jobs(2), 2);
  ::unsetenv("FL_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);  // hardware fallback, always at least 1
}

TEST(Runner, ParseRunnerArgsStripsFlagsKeepsPositionals) {
  const char* raw[] = {"prog", "attack",       "--jobs", "7", "a.bench",
                       "--jsonl=out.jsonl", "b.bench"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const RunnerArgs args = parse_runner_args(argc, argv.data());
  EXPECT_EQ(args.jobs, 7);
  EXPECT_EQ(args.jsonl_path, "out.jsonl");
  ASSERT_EQ(argc, 4);
  EXPECT_STREQ(argv[1], "attack");
  EXPECT_STREQ(argv[2], "a.bench");
  EXPECT_STREQ(argv[3], "b.bench");
}

namespace {

// Builds a mutable argv from string literals for parse_runner_args tests.
RunnerArgs parse(std::vector<const char*> raw, int* argc_out = nullptr) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const RunnerArgs args = parse_runner_args(argc, argv.data());
  if (argc_out != nullptr) *argc_out = argc;
  return args;
}

}  // namespace

TEST(Runner, ParseRunnerArgsCrashSafetyFlags) {
  const RunnerArgs args = parse({"--resume", "--retries", "2",
                                 "--cell-timeout=1.5", "--mem-mb", "256"});
  EXPECT_TRUE(args.resume);
  EXPECT_EQ(args.retries, 2);
  EXPECT_DOUBLE_EQ(args.cell_timeout_s, 1.5);
  EXPECT_EQ(args.memory_limit_mb, 256u);
}

TEST(Runner, ParseRunnerArgsRejectsJunkValues) {
  // atoi-style silent acceptance ("--jobs abc" == 0 workers) is exactly the
  // bug this guards against: a sweep must fail loudly, not run misshapen.
  EXPECT_THROW(parse({"--jobs", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", "-2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs", "4x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs="}), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs"}), std::invalid_argument);  // missing value
  EXPECT_THROW(parse({"--retries", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--retries", "two"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cell-timeout", "-3"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cell-timeout", "fast"}), std::invalid_argument);
  EXPECT_THROW(parse({"--mem-mb", "lots"}), std::invalid_argument);
  // "--jobs 0" is the documented auto value, not junk.
  EXPECT_GE(parse({"--jobs", "0"}).jobs, 1);
}

TEST(Runner, ResolveJobsRejectsJunkEnv) {
  ::setenv("FL_JOBS", "many", 1);
  EXPECT_THROW(resolve_jobs(0), std::invalid_argument);
  ::setenv("FL_JOBS", "-4", 1);
  EXPECT_THROW(resolve_jobs(0), std::invalid_argument);
  ::setenv("FL_JOBS", "0", 1);
  EXPECT_THROW(resolve_jobs(0), std::invalid_argument);
  ::unsetenv("FL_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(Runner, SuppressedParallelFailuresAreReportedToStderr) {
  const auto body = [&](std::size_t i) {
    if (i == 2) throw std::runtime_error("boom-two");
    if (i == 5) throw std::runtime_error("boom-five");
  };
  ::testing::internal::CaptureStderr();
  EXPECT_THROW(run_grid(8, 4, body), std::runtime_error);
  const std::string err = ::testing::internal::GetCapturedStderr();
  // Every suppressed failure is named, not just the rethrown first one.
  EXPECT_NE(err.find("cell 2"), std::string::npos) << err;
  EXPECT_NE(err.find("boom-two"), std::string::npos) << err;
  EXPECT_NE(err.find("cell 5"), std::string::npos) << err;
  EXPECT_NE(err.find("boom-five"), std::string::npos) << err;
}

TEST(Runner, GridConfigIsolatesAndRetriesFailingCells) {
  FaultInjector faults;
  faults.add(FaultSpec::at_cell(2, FaultKind::kThrow, 1));  // heals itself
  faults.add(FaultSpec::at_cell(4, FaultKind::kOom, 99));   // terminal
  GridConfig config;
  config.jobs = 1;
  config.retries = 1;
  config.faults = &faults;
  std::vector<int> runs(6, 0);
  const GridReport report =
      run_grid(6, config, [&](const CellContext& ctx) { ++runs[ctx.index]; });

  EXPECT_EQ(report.ok, 5u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.cells[2].status, CellOutcome::Status::kOk);
  EXPECT_EQ(report.cells[2].attempts, 2);  // first attempt absorbed the fault
  EXPECT_EQ(runs[2], 1);                   // fn itself only ran once
  EXPECT_EQ(report.cells[4].status, CellOutcome::Status::kFailed);
  EXPECT_EQ(report.cells[4].attempts, 2);  // retries exhausted
  EXPECT_EQ(runs[4], 0);
  EXPECT_NE(report.first_error, nullptr);
  EXPECT_THROW(std::rethrow_exception(report.first_error), std::bad_alloc);
}

TEST(Runner, GridConfigSkipsCompletedAndCancelledCells) {
  GridConfig config;
  config.jobs = 1;
  config.completed = {true, false, true, false};
  CancelToken cancel;
  config.cancel = &cancel;
  std::vector<int> runs(4, 0);
  const GridReport report = run_grid(4, config, [&](const CellContext& ctx) {
    ++runs[ctx.index];
    if (ctx.index == 1) cancel.request();  // signal arrives mid-sweep
  });
  EXPECT_EQ(report.cells[0].status, CellOutcome::Status::kSkipped);
  EXPECT_EQ(report.cells[1].status, CellOutcome::Status::kOk);
  EXPECT_EQ(report.cells[2].status, CellOutcome::Status::kSkipped);
  EXPECT_EQ(report.cells[3].status, CellOutcome::Status::kCancelled);
  EXPECT_EQ(runs[3], 0);  // never dispatched after the cancel
  EXPECT_TRUE(report.cancelled);
}

TEST(Runner, CellContextEffectiveTimeout) {
  CellContext ctx;
  EXPECT_DOUBLE_EQ(ctx.effective_timeout(10.0), 10.0);  // no cell budget
  ctx.timeout_s = 3.0;
  EXPECT_DOUBLE_EQ(ctx.effective_timeout(10.0), 3.0);
  EXPECT_DOUBLE_EQ(ctx.effective_timeout(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ctx.effective_timeout(0.0), 3.0);  // unlimited fallback
}

TEST(Fault, ParseSpecGrammar) {
  EXPECT_TRUE(FaultInjector::parse("").empty());
  EXPECT_FALSE(FaultInjector::parse("cell:7:throw").empty());
  EXPECT_FALSE(FaultInjector::parse("cell:1:throw,cell:2:oom:3").empty());
  EXPECT_THROW(FaultInjector::parse("cell:7"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("cell:x:throw"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("cell:7:explode"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("cell:7:throw:0"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("gate:7:throw"), std::invalid_argument);
}

TEST(Fault, InjectIsPureFunctionOfCellAndAttempt) {
  const FaultInjector faults = FaultInjector::parse("cell:3:throw:2");
  CellContext ctx;
  ctx.index = 2;
  EXPECT_NO_THROW(faults.inject(ctx));
  ctx.index = 3;
  ctx.attempt = 0;
  EXPECT_THROW(faults.inject(ctx), FaultInjected);
  ctx.attempt = 1;
  EXPECT_THROW(faults.inject(ctx), FaultInjected);
  ctx.attempt = 2;  // past the count threshold: the cell heals
  EXPECT_NO_THROW(faults.inject(ctx));
}

TEST(Signal, HandlerRoutesSignalToCancelToken) {
  CancelToken token;
  {
    ScopedSignalHandler handler(token);
    EXPECT_FALSE(token.cancelled());
    // Only one live instance allowed: handlers are process-global state.
    EXPECT_THROW(ScopedSignalHandler second(token), std::logic_error);
    std::raise(SIGTERM);  // first signal: cancels, does not kill
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(ScopedSignalHandler::last_signal(), SIGTERM);
  }
  // Handler uninstalled: a fresh one can be installed again.
  CancelToken token2;
  ScopedSignalHandler handler(token2);
  EXPECT_FALSE(token2.cancelled());
}

TEST(Jsonl, ObjectKeepsOrderAndEscapes) {
  JsonObject o;
  o.field("name", "a\"b\\c\nd").field("n", 42).field("ok", true)
      .field("x", 0.5);
  EXPECT_EQ(std::move(o).str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"ok\":true,\"x\":0.5}");
}

TEST(Jsonl, SinkReordersOutOfOrderWrites) {
  std::ostringstream out;
  {
    JsonlSink sink(out);
    sink.write(2, "{\"i\":2}");
    sink.write(0, "{\"i\":0}");
    EXPECT_EQ(out.str(), "{\"i\":0}\n");  // 1 still missing; 2 held back
    sink.write(1, "{\"i\":1}");
  }
  EXPECT_EQ(out.str(), "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n");
}

TEST(Jsonl, FlushDrainsPastGaps) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write(1, "{\"i\":1}");  // index 0 never reports
  sink.flush();
  EXPECT_EQ(out.str(), "{\"i\":1}\n");
}

TEST(Jsonl, SkipUnblocksLaterWrites) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write(2, "{\"i\":2}");
  EXPECT_EQ(out.str(), "");  // held back behind 0 and 1
  sink.skip(0);              // resumed cells never report
  sink.skip(1);
  EXPECT_EQ(out.str(), "{\"i\":2}\n");
  sink.write(3, "{\"i\":3}");
  EXPECT_EQ(out.str(), "{\"i\":2}\n{\"i\":3}\n");
  sink.skip(3);  // skipping an already-written index is a no-op
  sink.flush();
  EXPECT_EQ(out.str(), "{\"i\":2}\n{\"i\":3}\n");
}

TEST(Jsonl, SinkSyncHookFiresOnCommit) {
  std::ostringstream out;
  int syncs = 0;
  JsonlSink sink(out, [&] { ++syncs; });
  sink.write(1, "{\"i\":1}");
  EXPECT_EQ(syncs, 0);  // nothing committed yet (gap at 0)
  sink.write(0, "{\"i\":0}");
  EXPECT_EQ(syncs, 1);  // one commit flushed both lines
  sink.write_unordered("{\"h\":true}");
  EXPECT_EQ(syncs, 2);
}

TEST(Jsonl, WriteUnorderedKeepsLinesIntactUnderConcurrency) {
  std::ostringstream out;
  {
    JsonlSink sink(out);
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&sink, t] {
        for (int i = 0; i < 50; ++i) {
          sink.write_unordered("{\"t\":" + std::to_string(t) +
                               ",\"i\":" + std::to_string(i) + "}");
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  // Every line must be a complete record — interleaved writes torn across
  // lines would corrupt the file for resume scans.
  std::istringstream in(out.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ASSERT_TRUE(json_int_field(line, "t").has_value()) << line;
    ASSERT_TRUE(json_int_field(line, "i").has_value()) << line;
    ++count;
  }
  EXPECT_EQ(count, 200);
}

TEST(Jsonl, OpenJsonlThrowsOnUnwritablePath) {
  EXPECT_THROW(open_jsonl("/nonexistent-dir/x/y/out.jsonl"),
               std::runtime_error);
  EXPECT_THROW(JsonlWriter("/nonexistent-dir/x/y/out.jsonl"),
               std::runtime_error);
}

TEST(Jsonl, FieldParsersExtractFlatRecords) {
  const std::string line =
      "{\"cell\":12,\"bench\":\"table2\",\"status\":\"ok\",\"cells\":99}";
  EXPECT_EQ(json_int_field(line, "cell"), 12);
  EXPECT_EQ(json_int_field(line, "cells"), 99);  // full-token match only
  EXPECT_EQ(json_string_field(line, "bench"), "table2");
  EXPECT_EQ(json_string_field(line, "status"), "ok");
  EXPECT_EQ(json_int_field(line, "missing"), std::nullopt);
  EXPECT_EQ(json_string_field(line, "cell"), std::nullopt);  // not a string
  EXPECT_EQ(json_string_field("{\"a\":\"unterminated", "a"), std::nullopt);
  EXPECT_EQ(json_string_field("{\"a\":\"x\\\"y\"}", "a"), "x\"y");
}

TEST(Jsonl, ScanResumeRecoversCompletedCells) {
  const std::string path =
      ::testing::TempDir() + "/fl_resume_scan_test.jsonl";
  {
    std::ofstream out(path);
    out << run_header_line("table2", 5, 7) << "\n";
    out << "{\"cell\":0,\"bench\":\"table2\",\"status\":\"success\"}\n";
    out << "{\"cell\":3,\"bench\":\"table2\",\"status\":\"failed\","
           "\"reason\":\"boom\",\"attempt\":2}\n";
    out << "{\"record\":\"note\",\"text\":\"no cell field\"}\n";  // foreign
    out << "{\"cell\":99,\"bench\":\"table2\"}\n";  // out of range: ignored
  }
  const ResumeState state = scan_jsonl_resume(path, "table2", 5);
  EXPECT_EQ(state.num_completed, 2u);
  EXPECT_EQ(state.num_failed, 1u);
  const std::vector<bool> expected = {true, false, false, true, false};
  EXPECT_EQ(state.completed, expected);

  // Mismatched manifest: resuming a different sweep onto this file would
  // corrupt it, so the scan must refuse.
  EXPECT_THROW(scan_jsonl_resume(path, "table4", 5), std::runtime_error);
  EXPECT_THROW(scan_jsonl_resume(path, "table2", 6), std::runtime_error);

  // Missing file: fresh run, nothing completed.
  const ResumeState fresh =
      scan_jsonl_resume(path + ".does-not-exist", "table2", 5);
  EXPECT_EQ(fresh.num_completed, 0u);
  EXPECT_EQ(fresh.completed.size(), 5u);
  std::remove(path.c_str());
}

TEST(Cancel, TokenInterruptsAnAttack) {
  netlist::GeneratorConfig gen;
  gen.num_inputs = 12;
  gen.num_outputs = 6;
  gen.num_gates = 80;
  gen.seed = 31;
  const netlist::Netlist original = netlist::generate_circuit(gen);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const attacks::Oracle oracle(original);
  CancelToken token;
  token.request();  // cancelled before the attack even starts
  attacks::AttackOptions options;
  options.interrupt = token.flag();
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, attacks::AttackStatus::kInterrupted);
  EXPECT_EQ(result.stop_reason, sat::StopReason::kInterrupt);
  EXPECT_EQ(result.iterations, 0u);
  // Best-effort key is still sized to the key width.
  EXPECT_EQ(result.key.size(), locked.key_bits());
}

// The tentpole guarantee: a parallel sweep writes the same JSONL byte
// stream as the serial reference loop, except for the `_s` wall-clock
// fields. Runs a miniature attack grid both ways and compares.
TEST(Determinism, SerialAndParallelSweepsMatchModuloWallClock) {
  struct Cell {
    int size;
    int replica;
  };
  const std::vector<Cell> grid = {{4, 0}, {4, 1}, {8, 0}, {8, 1}};

  const auto sweep = [&](int jobs) {
    std::ostringstream out;
    JsonlSink sink(out);
    run_grid(grid.size(), jobs, [&](std::size_t i) {
      const Cell& cell = grid[i];
      const std::uint64_t seed =
          derive_seed(41, {static_cast<std::uint64_t>(cell.size),
                           static_cast<std::uint64_t>(cell.replica)});
      netlist::GeneratorConfig gen;
      gen.num_inputs = 12;
      gen.num_outputs = 6;
      gen.num_gates = 120;
      gen.seed = seed;
      const netlist::Netlist original = netlist::generate_circuit(gen);
      core::FullLockConfig config =
          core::FullLockConfig::with_plrs({cell.size});
      config.seed = seed;
      const core::LockedCircuit locked = core::full_lock(original, config);
      const attacks::Oracle oracle(original);
      const attacks::AttackResult result =
          attacks::SatAttack().run(locked, oracle);
      JsonObject o;
      o.field("size", cell.size)
          .field("replica", cell.replica)
          .field("seed", seed)
          .field("key_bits", locked.key_bits())
          .field("status", attacks::to_string(result.status))
          .field("iterations", result.iterations)
          .field("mean_clause_var_ratio", result.mean_clause_var_ratio)
          .field("oracle_queries", result.oracle_queries)
          .field("conflicts", result.solver_stats.conflicts)
          .field("binary_propagations", result.solver_stats.binary_propagations)
          .field("learned_clauses", result.solver_stats.learned_clauses)
          .field("glue_learned", result.solver_stats.glue_learned)
          .field("max_lbd", result.solver_stats.max_lbd)
          .field("promoted_clauses", result.solver_stats.promoted_clauses)
          .field("db_size_after_reduce",
                 result.solver_stats.db_size_after_reduce)
          .field("simplify_removed_clauses",
                 result.solver_stats.simplify_removed_clauses)
          .field("mean_iteration_s", result.mean_iteration_seconds)
          .field("wall_s", result.seconds);
      sink.write(i, std::move(o).str());
    });
    sink.flush();
    // Strip the wall-clock fields — the only part allowed to vary.
    static const std::regex wall_clock(",\"(mean_iteration_s|wall_s)\":[^,}]+");
    return std::regex_replace(out.str(), wall_clock, "");
  };

  const std::string serial = sweep(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, sweep(4));
  EXPECT_EQ(serial, sweep(3));  // worker count must not matter either
}

}  // namespace
}  // namespace fl::runtime
