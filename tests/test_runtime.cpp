// Parallel sweep runtime: thread pool, seed derivation, cancellation, JSONL
// sink ordering, runner arg parsing, and the serial-vs-parallel determinism
// guarantee (run under TSan in the sanitizer CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <regex>
#include <sstream>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "netlist/generator.h"
#include "runtime/cancel.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/thread_pool.h"

namespace fl::runtime {
namespace {

TEST(Seed, SplitMixIsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Full-avalanche sanity: consecutive inputs land far apart.
  EXPECT_GT(splitmix64(1) ^ splitmix64(2), 0xFFFFFFFFull);
}

TEST(Seed, DeriveSeedIsCoordinateAndOrderSensitive) {
  const std::uint64_t a = derive_seed(7, {1, 2});
  EXPECT_EQ(a, derive_seed(7, {1, 2}));    // pure function of coordinates
  EXPECT_NE(a, derive_seed(7, {2, 1}));    // order matters
  EXPECT_NE(a, derive_seed(8, {1, 2}));    // base matters
  EXPECT_NE(a, derive_seed(7, {1, 2, 0}));  // arity matters
}

TEST(ThreadPool, RunsEveryJobAndWaitsIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // Pool stays usable after wait_idle.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(Runner, SerialAndParallelGridsProduceIdenticalResults) {
  const std::size_t n = 64;
  const auto cell = [](std::size_t i) {
    return derive_seed(3, {static_cast<std::uint64_t>(i)});
  };
  std::vector<std::uint64_t> serial(n, 0), parallel(n, 0);
  run_grid(n, 1, [&](std::size_t i) { serial[i] = cell(i); });
  run_grid(n, 4, [&](std::size_t i) { parallel[i] = cell(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Runner, FirstExceptionPropagatesAfterDrain) {
  std::atomic<int> ran{0};
  const auto body = [&](std::size_t i) {
    ran.fetch_add(1);
    if (i == 3) throw std::runtime_error("cell 3 failed");
  };
  EXPECT_THROW(run_grid(8, 1, body), std::runtime_error);
  ran.store(0);
  EXPECT_THROW(run_grid(8, 4, body), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the grid drains; remaining cells still ran
}

TEST(Runner, ResolveJobsPrecedence) {
  EXPECT_EQ(resolve_jobs(3), 3);  // explicit request wins
  ::setenv("FL_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(0), 5);
  EXPECT_EQ(resolve_jobs(2), 2);
  ::unsetenv("FL_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);  // hardware fallback, always at least 1
}

TEST(Runner, ParseRunnerArgsStripsFlagsKeepsPositionals) {
  const char* raw[] = {"prog", "attack",       "--jobs", "7", "a.bench",
                       "--jsonl=out.jsonl", "b.bench"};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size());
  const RunnerArgs args = parse_runner_args(argc, argv.data());
  EXPECT_EQ(args.jobs, 7);
  EXPECT_EQ(args.jsonl_path, "out.jsonl");
  ASSERT_EQ(argc, 4);
  EXPECT_STREQ(argv[1], "attack");
  EXPECT_STREQ(argv[2], "a.bench");
  EXPECT_STREQ(argv[3], "b.bench");
}

TEST(Jsonl, ObjectKeepsOrderAndEscapes) {
  JsonObject o;
  o.field("name", "a\"b\\c\nd").field("n", 42).field("ok", true)
      .field("x", 0.5);
  EXPECT_EQ(std::move(o).str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"ok\":true,\"x\":0.5}");
}

TEST(Jsonl, SinkReordersOutOfOrderWrites) {
  std::ostringstream out;
  {
    JsonlSink sink(out);
    sink.write(2, "{\"i\":2}");
    sink.write(0, "{\"i\":0}");
    EXPECT_EQ(out.str(), "{\"i\":0}\n");  // 1 still missing; 2 held back
    sink.write(1, "{\"i\":1}");
  }
  EXPECT_EQ(out.str(), "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n");
}

TEST(Jsonl, FlushDrainsPastGaps) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write(1, "{\"i\":1}");  // index 0 never reports
  sink.flush();
  EXPECT_EQ(out.str(), "{\"i\":1}\n");
}

TEST(Cancel, TokenInterruptsAnAttack) {
  netlist::GeneratorConfig gen;
  gen.num_inputs = 12;
  gen.num_outputs = 6;
  gen.num_gates = 80;
  gen.seed = 31;
  const netlist::Netlist original = netlist::generate_circuit(gen);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const attacks::Oracle oracle(original);
  CancelToken token;
  token.request();  // cancelled before the attack even starts
  attacks::AttackOptions options;
  options.interrupt = token.flag();
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  EXPECT_EQ(result.status, attacks::AttackStatus::kTimeout);
  EXPECT_EQ(result.iterations, 0u);
}

// The tentpole guarantee: a parallel sweep writes the same JSONL byte
// stream as the serial reference loop, except for the `_s` wall-clock
// fields. Runs a miniature attack grid both ways and compares.
TEST(Determinism, SerialAndParallelSweepsMatchModuloWallClock) {
  struct Cell {
    int size;
    int replica;
  };
  const std::vector<Cell> grid = {{4, 0}, {4, 1}, {8, 0}, {8, 1}};

  const auto sweep = [&](int jobs) {
    std::ostringstream out;
    JsonlSink sink(out);
    run_grid(grid.size(), jobs, [&](std::size_t i) {
      const Cell& cell = grid[i];
      const std::uint64_t seed =
          derive_seed(41, {static_cast<std::uint64_t>(cell.size),
                           static_cast<std::uint64_t>(cell.replica)});
      netlist::GeneratorConfig gen;
      gen.num_inputs = 12;
      gen.num_outputs = 6;
      gen.num_gates = 120;
      gen.seed = seed;
      const netlist::Netlist original = netlist::generate_circuit(gen);
      core::FullLockConfig config =
          core::FullLockConfig::with_plrs({cell.size});
      config.seed = seed;
      const core::LockedCircuit locked = core::full_lock(original, config);
      const attacks::Oracle oracle(original);
      const attacks::AttackResult result =
          attacks::SatAttack().run(locked, oracle);
      JsonObject o;
      o.field("size", cell.size)
          .field("replica", cell.replica)
          .field("seed", seed)
          .field("key_bits", locked.key_bits())
          .field("status", attacks::to_string(result.status))
          .field("iterations", result.iterations)
          .field("mean_clause_var_ratio", result.mean_clause_var_ratio)
          .field("oracle_queries", result.oracle_queries)
          .field("conflicts", result.solver_stats.conflicts)
          .field("binary_propagations", result.solver_stats.binary_propagations)
          .field("learned_clauses", result.solver_stats.learned_clauses)
          .field("glue_learned", result.solver_stats.glue_learned)
          .field("max_lbd", result.solver_stats.max_lbd)
          .field("promoted_clauses", result.solver_stats.promoted_clauses)
          .field("db_size_after_reduce",
                 result.solver_stats.db_size_after_reduce)
          .field("simplify_removed_clauses",
                 result.solver_stats.simplify_removed_clauses)
          .field("mean_iteration_s", result.mean_iteration_seconds)
          .field("wall_s", result.seconds);
      sink.write(i, std::move(o).str());
    });
    sink.flush();
    // Strip the wall-clock fields — the only part allowed to vary.
    static const std::regex wall_clock(",\"(mean_iteration_s|wall_s)\":[^,}]+");
    return std::regex_replace(out.str(), wall_clock, "");
  };

  const std::string serial = sweep(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, sweep(4));
  EXPECT_EQ(serial, sweep(3));  // worker count must not matter either
}

}  // namespace
}  // namespace fl::runtime
