// Recursive DPLL solver: correctness, statistics, and the hardness-peak
// property behind Fig. 1.
#include <gtest/gtest.h>

#include <random>

#include "sat/dpll.h"
#include "sat/ksat.h"
#include "sat/solver.h"

namespace fl::sat {
namespace {

TEST(Dpll, TrivialSat) {
  Cnf cnf;
  const Var a = cnf.new_var();
  cnf.add({pos(a)});
  const DpllResult r = Dpll().solve(cnf);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.model[a]);
  EXPECT_GE(r.recursive_calls, 1u);
}

TEST(Dpll, TrivialUnsat) {
  Cnf cnf;
  const Var a = cnf.new_var();
  cnf.add({pos(a)});
  cnf.add({neg(a)});
  EXPECT_FALSE(Dpll().solve(cnf).satisfiable);
}

TEST(Dpll, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.new_var();
  cnf.add({});
  EXPECT_FALSE(Dpll().solve(cnf).satisfiable);
}

TEST(Dpll, UnitPropagationCounted) {
  Cnf cnf;
  const Var a = cnf.new_var();
  const Var b = cnf.new_var();
  cnf.add({pos(a)});
  cnf.add({neg(a), pos(b)});
  const DpllResult r = Dpll().solve(cnf);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_GE(r.unit_propagations, 2u);
  EXPECT_EQ(r.branches, 0u);
}

TEST(Dpll, PureLiteralCounted) {
  Cnf cnf;
  const Var a = cnf.new_var();
  const Var b = cnf.new_var();
  cnf.add({pos(a), pos(b)});
  cnf.add({pos(a), neg(b)});
  const DpllResult r = Dpll().solve(cnf);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_GE(r.purifications, 1u);  // `a` is pure positive
}

TEST(Dpll, AgreesWithCdclOnRandomInstances) {
  std::mt19937_64 seeds(31);
  for (int trial = 0; trial < 40; ++trial) {
    KSatConfig config;
    config.num_vars = 20;
    config.num_clauses = 60 + static_cast<int>(seeds() % 50);
    config.seed = seeds();
    const Cnf cnf = random_ksat(config);
    const DpllResult dpll = Dpll().solve(cnf);
    ASSERT_TRUE(dpll.completed);
    const LBool cdcl = solve_cnf(cnf);
    ASSERT_EQ(dpll.satisfiable, cdcl == LBool::kTrue) << "trial " << trial;
    if (dpll.satisfiable) {
      // Model actually satisfies.
      for (const Clause& c : cnf.clauses) {
        bool sat = false;
        for (const Lit l : c) {
          if (dpll.model[l.var()] != l.negated()) sat = true;
        }
        ASSERT_TRUE(sat);
      }
    }
  }
}

TEST(Dpll, CallBudgetAborts) {
  KSatConfig config;
  config.num_vars = 60;
  config.num_clauses = 258;  // ratio 4.3: hard region
  config.seed = 17;
  const Cnf cnf = random_ksat(config);
  const DpllResult r = Dpll(/*max_calls=*/3).solve(cnf);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.recursive_calls, 4u);
}

// A long implication chain drives the search depth to one frame per unit
// propagation. The explicit-stack implementation must handle depths that
// would overflow the machine stack under the textbook recursion, with the
// exact counters the recursion would have produced.
TEST(Dpll, DeepImplicationChainDoesNotOverflowStack) {
  constexpr int kChain = 30000;
  Cnf cnf;
  std::vector<Var> v;
  v.reserve(kChain);
  for (int i = 0; i < kChain; ++i) v.push_back(cnf.new_var());
  cnf.add({pos(v[0])});
  for (int i = 0; i + 1 < kChain; ++i) {
    cnf.add({neg(v[i]), pos(v[i + 1])});
  }
  const DpllResult r = Dpll().solve(cnf);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.satisfiable);
  for (int i = 0; i < kChain; ++i) EXPECT_TRUE(r.model[v[i]]);
  // Every variable is set by unit propagation (the seed unit, then the
  // chain), one recursive call per propagation plus the final all-satisfied
  // call; no branching, no purification.
  EXPECT_EQ(r.unit_propagations, static_cast<std::uint64_t>(kChain));
  EXPECT_EQ(r.recursive_calls, static_cast<std::uint64_t>(kChain) + 1);
  EXPECT_EQ(r.branches, 0u);
  EXPECT_EQ(r.purifications, 0u);
}

// The call budget keeps its exact recursion semantics on the explicit
// stack: a budget of k aborts on call k+1, never later.
TEST(Dpll, CallBudgetExactOnDeepChain) {
  constexpr int kChain = 500;
  Cnf cnf;
  std::vector<Var> v;
  for (int i = 0; i < kChain; ++i) v.push_back(cnf.new_var());
  cnf.add({pos(v[0])});
  for (int i = 0; i + 1 < kChain; ++i) {
    cnf.add({neg(v[i]), pos(v[i + 1])});
  }
  const DpllResult r = Dpll(/*max_calls=*/100).solve(cnf);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.recursive_calls, 101u);
}

// The Fig. 1 property: median recursive calls peak near clause/var 4.3 and
// collapse in the under-/over-constrained regimes.
TEST(Dpll, HardnessPeaksNearPhaseTransition) {
  constexpr int kVars = 30;
  constexpr int kSeeds = 7;
  const auto median_calls = [&](double ratio) {
    std::vector<std::uint64_t> calls;
    for (int s = 0; s < kSeeds; ++s) {
      KSatConfig config;
      config.num_vars = kVars;
      config.num_clauses = static_cast<int>(kVars * ratio);
      config.seed = 1000 + s;
      const DpllResult r = Dpll().solve(random_ksat(config));
      calls.push_back(r.recursive_calls);
    }
    std::sort(calls.begin(), calls.end());
    return calls[calls.size() / 2];
  };
  const std::uint64_t under = median_calls(2.0);
  const std::uint64_t critical = median_calls(4.3);
  const std::uint64_t over = median_calls(8.0);
  EXPECT_GT(critical, under);
  EXPECT_GT(critical, over);
}

}  // namespace
}  // namespace fl::sat
