// Full-Lock end-to-end transform.
#include <gtest/gtest.h>

#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/bench_io.h"
#include "netlist/profiles.h"

namespace fl::core {
namespace {

using netlist::Netlist;

TEST(FullLock, SinglePlrUnlocksWithCorrectKey) {
  const Netlist original = netlist::make_circuit("c432", 31);
  FullLockReport report;
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({8}), &report);
  EXPECT_EQ(report.num_plrs, 1);
  EXPECT_EQ(locked.key_bits(), locked.netlist.num_keys());
  EXPECT_EQ(locked.scheme, "full-lock");
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 1, /*sat=*/true));
}

TEST(FullLock, MultiplePlrs) {
  const Netlist original = netlist::make_circuit("c1908", 32);
  FullLockReport report;
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({8, 8, 4}), &report);
  EXPECT_EQ(report.num_plrs, 3);
  EXPECT_EQ(locked.routing_blocks.size(), 3u);
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 2));
}

TEST(FullLock, Table5StyleConfig) {
  // The paper's c432 row: 2x16x16 + 1x8x8.
  const Netlist original = netlist::make_circuit("c432", 33);
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({16, 16, 8}));
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 3));
  // Key budget: at least the CLN keys of the three networks.
  ClnConfig c16;
  c16.n = 16;
  ClnConfig c8;
  c8.n = 8;
  EXPECT_GE(static_cast<int>(locked.key_bits()),
            2 * cln_num_keys(c16) + cln_num_keys(c8));
}

TEST(FullLock, CyclicInsertionVerifiesBySimulation) {
  const Netlist original = netlist::make_circuit("c880", 34);
  FullLockConfig config = FullLockConfig::with_plrs(
      {8}, ClnTopology::kBanyanNonBlocking, CycleMode::kForce);
  const LockedCircuit locked = full_lock(original, config);
  EXPECT_TRUE(locked.netlist.is_cyclic());
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 4));
}

TEST(FullLock, DeterministicForFixedSeed) {
  const Netlist original = netlist::make_circuit("c499", 35);
  FullLockConfig config = FullLockConfig::with_plrs({8});
  config.seed = 99;
  const LockedCircuit a = full_lock(original, config);
  const LockedCircuit b = full_lock(original, config);
  EXPECT_EQ(a.correct_key, b.correct_key);
  EXPECT_EQ(a.netlist.num_gates(), b.netlist.num_gates());
}

TEST(FullLock, DifferentSeedsGiveDifferentKeys) {
  const Netlist original = netlist::make_circuit("c499", 35);
  FullLockConfig config = FullLockConfig::with_plrs({16});
  config.seed = 1;
  const LockedCircuit a = full_lock(original, config);
  config.seed = 2;
  const LockedCircuit b = full_lock(original, config);
  EXPECT_NE(a.correct_key, b.correct_key);
}

TEST(FullLock, HighCorruptionUnderWrongKeys) {
  const Netlist original = netlist::make_circuit("c880", 36);
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({16}));
  const CorruptionStats stats = output_corruption(original, locked, 24, 4, 5);
  // §2: "the output corruption of this method is significantly higher than
  // obfuscating solutions relying on increasing N". Point-function schemes
  // corrupt ~2^-n of outputs; Full-Lock must corrupt a sizable fraction.
  EXPECT_GT(stats.mean_error_rate, 0.05);
}

TEST(FullLock, ReportCountsAreConsistent) {
  const Netlist original = netlist::make_circuit("c2670", 37);
  FullLockReport report;
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({16, 8}), &report);
  EXPECT_EQ(report.key_bits, locked.key_bits());
  EXPECT_GE(report.num_luts, 0);
  EXPECT_EQ(report.num_plrs, 2);
  // MUX population reflects the CLN fabric.
  const auto hist = locked.netlist.type_histogram();
  EXPECT_GT(hist[static_cast<std::size_t>(netlist::GateType::kMux)], 0u);
}

TEST(FullLock, LutFreeVariant) {
  const Netlist original = netlist::make_circuit("i4", 38);
  FullLockConfig config = FullLockConfig::with_plrs(
      {8}, ClnTopology::kBanyanNonBlocking, CycleMode::kAvoid,
      /*twist_luts=*/false);
  FullLockReport report;
  const LockedCircuit locked = full_lock(original, config, &report);
  EXPECT_EQ(report.num_luts, 0);
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 6));
}

TEST(FullLock, TwoInputDecompositionCapsLutSize) {
  const Netlist original = netlist::make_circuit("c3540", 40);
  FullLockConfig config = FullLockConfig::with_plrs({8});
  config.decompose_two_input = true;
  FullLockReport report;
  const LockedCircuit locked = full_lock(original, config, &report);
  EXPECT_TRUE(verify_unlocks(original, locked, 16, 8));
  // Every twisted consumer has <= 2 data inputs, so each LUT contributes at
  // most 4 truth-table key bits. Verify via the LUT key names.
  std::size_t lut_keys = 0;
  for (const netlist::GateId k : locked.netlist.keys()) {
    const std::string& name = locked.netlist.gate(k).name;
    if (name.find("_lut") != std::string::npos) ++lut_keys;
  }
  EXPECT_LE(lut_keys, 4u * static_cast<std::size_t>(report.num_luts));
}

TEST(FullLock, KeysSurviveBenchRoundTrip) {
  const Netlist original = netlist::make_circuit("c432", 39);
  const LockedCircuit locked =
      full_lock(original, FullLockConfig::with_plrs({8}));
  const Netlist reparsed = netlist::read_bench_string(
      netlist::write_bench_string(locked.netlist), "roundtrip");
  ASSERT_EQ(reparsed.num_keys(), locked.netlist.num_keys());
  EXPECT_TRUE(
      verify_unlocks(original, reparsed, locked.correct_key, 8, 7));
}

}  // namespace
}  // namespace fl::core
