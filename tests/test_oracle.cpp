// Oracle: query semantics and accounting.
#include <gtest/gtest.h>

#include "attacks/oracle.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

TEST(Oracle, MatchesDirectSimulation) {
  const netlist::Netlist c17 = netlist::make_c17();
  const Oracle oracle(c17);
  for (int x = 0; x < 32; ++x) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = ((x >> i) & 1) != 0;
    EXPECT_EQ(oracle.query(in), netlist::eval_once(c17, in, {}));
  }
}

TEST(Oracle, CountsQueries) {
  const Oracle oracle(netlist::make_c17());
  EXPECT_EQ(oracle.num_queries(), 0u);
  oracle.query(std::vector<bool>(5, false));
  oracle.query(std::vector<bool>(5, true));
  EXPECT_EQ(oracle.num_queries(), 2u);
  const std::vector<netlist::Word> words(5, 0x1234);
  oracle.query_words(words, 64);
  EXPECT_EQ(oracle.num_queries(), 66u);
  // Partially packed words charge only the patterns actually present.
  oracle.query_words(words, 13);
  EXPECT_EQ(oracle.num_queries(), 79u);
  EXPECT_THROW(oracle.query_words(words, 0), std::invalid_argument);
  EXPECT_THROW(oracle.query_words(words, 65), std::invalid_argument);
  EXPECT_EQ(oracle.num_queries(), 79u);  // rejected calls charge nothing
}

TEST(Oracle, BatchChargesExactPatternCount) {
  const Oracle oracle(netlist::make_c17());
  const std::size_t n_words = 3;
  std::vector<netlist::Word> inputs(5 * n_words, 0xDEADBEEFCAFEF00Dull);
  std::vector<netlist::Word> outputs(2 * n_words);
  oracle.query_batch(inputs, n_words, 170, outputs);
  EXPECT_EQ(oracle.num_queries(), 170u);
  EXPECT_THROW(oracle.query_batch(inputs, n_words, 193, outputs),
               std::invalid_argument);
  EXPECT_EQ(oracle.num_queries(), 170u);
}

TEST(Oracle, RejectsKeyedCircuit) {
  netlist::Netlist n;
  const auto a = n.add_input("a");
  const auto k = n.add_key("k");
  n.mark_output(n.add_gate(netlist::GateType::kXor, {a, k}), "y");
  EXPECT_THROW(Oracle{n}, std::invalid_argument);
}

TEST(Oracle, RejectsWrongQueryWidth) {
  const Oracle oracle(netlist::make_c17());
  EXPECT_THROW(oracle.query(std::vector<bool>(3, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace fl::attacks
