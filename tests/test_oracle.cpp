// Oracle: query semantics and accounting.
#include <gtest/gtest.h>

#include <random>

#include "attacks/oracle.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

TEST(Oracle, MatchesDirectSimulation) {
  const netlist::Netlist c17 = netlist::make_c17();
  const Oracle oracle(c17);
  for (int x = 0; x < 32; ++x) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = ((x >> i) & 1) != 0;
    EXPECT_EQ(oracle.query(in), netlist::eval_once(c17, in, {}));
  }
}

TEST(Oracle, CountsQueries) {
  const Oracle oracle(netlist::make_c17());
  EXPECT_EQ(oracle.num_queries(), 0u);
  oracle.query(std::vector<bool>(5, false));
  oracle.query(std::vector<bool>(5, true));
  EXPECT_EQ(oracle.num_queries(), 2u);
  const std::vector<netlist::Word> words(5, 0x1234);
  oracle.query_words(words, 64);
  EXPECT_EQ(oracle.num_queries(), 66u);
  // Partially packed words charge only the patterns actually present.
  oracle.query_words(words, 13);
  EXPECT_EQ(oracle.num_queries(), 79u);
  EXPECT_THROW(oracle.query_words(words, 0), std::invalid_argument);
  EXPECT_THROW(oracle.query_words(words, 65), std::invalid_argument);
  EXPECT_EQ(oracle.num_queries(), 79u);  // rejected calls charge nothing
}

TEST(Oracle, BatchChargesExactPatternCount) {
  const Oracle oracle(netlist::make_c17());
  const std::size_t n_words = 3;
  std::vector<netlist::Word> inputs(5 * n_words, 0xDEADBEEFCAFEF00Dull);
  std::vector<netlist::Word> outputs(2 * n_words);
  oracle.query_batch(inputs, n_words, 170, outputs);
  EXPECT_EQ(oracle.num_queries(), 170u);
  EXPECT_THROW(oracle.query_batch(inputs, n_words, 193, outputs),
               std::invalid_argument);
  EXPECT_EQ(oracle.num_queries(), 170u);
}

TEST(Oracle, RejectsKeyedCircuit) {
  netlist::Netlist n;
  const auto a = n.add_input("a");
  const auto k = n.add_key("k");
  n.mark_output(n.add_gate(netlist::GateType::kXor, {a, k}), "y");
  EXPECT_THROW(Oracle{n}, std::invalid_argument);
}

TEST(Oracle, RejectsWrongQueryWidth) {
  const Oracle oracle(netlist::make_c17());
  EXPECT_THROW(oracle.query(std::vector<bool>(3, false)),
               std::invalid_argument);
}

TEST(Oracle, WideBatchMatchesSingleQueries) {
  // query_batch runs the SIMD path with thread_local scratch; every packed
  // lane must agree with the one-pattern reference query.
  const netlist::Netlist c432 = netlist::make_circuit("c432", 5);
  const Oracle oracle(c432);
  const std::size_t n_words = 3;
  const std::size_t n_patterns = 150;  // partially filled last word
  std::mt19937_64 rng(11);
  std::vector<netlist::Word> inputs(c432.num_inputs() * n_words);
  for (auto& w : inputs) w = rng();
  std::vector<netlist::Word> outputs(c432.num_outputs() * n_words);
  oracle.query_batch(inputs, n_words, n_patterns, outputs);

  for (const std::size_t p : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{149}}) {
    const std::size_t w = p / 64;
    const int bit = static_cast<int>(p % 64);
    std::vector<bool> pattern(c432.num_inputs());
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = ((inputs[i * n_words + w] >> bit) & 1) != 0;
    }
    const std::vector<bool> expected = oracle.query(pattern);
    for (std::size_t o = 0; o < expected.size(); ++o) {
      EXPECT_EQ(((outputs[o * n_words + w] >> bit) & 1) != 0, expected[o])
          << "pattern " << p << " output " << o;
    }
  }
}

}  // namespace
}  // namespace fl::attacks
