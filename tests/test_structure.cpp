// Structural analysis: reachability, liveness, feedback edges, compaction,
// signal probabilities.
#include <gtest/gtest.h>

#include <random>

#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"
#include "netlist/structure.h"

namespace fl::netlist {
namespace {

TEST(Reachability, AgreesWithFanoutCone) {
  const Netlist n = make_circuit("c432", 2);
  Reachability reach(n);
  const GateId src = n.inputs()[0];
  const auto cone = n.fanout_cone(src);
  for (GateId g = 0; g < n.num_gates(); g += 7) {
    EXPECT_EQ(reach.reaches(src, g), static_cast<bool>(cone[g]));
  }
}

TEST(LiveGates, DeadLogicDetected) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId live = n.add_gate(GateType::kNot, {a}, "live");
  const GateId dead = n.add_gate(GateType::kBuf, {a}, "dead");
  n.mark_output(live, "y");
  const auto lv = live_gates(n);
  EXPECT_TRUE(lv[live]);
  EXPECT_FALSE(lv[dead]);
  EXPECT_TRUE(lv[a]);
}

TEST(FeedbackEdges, EmptyOnDag) {
  const Netlist n = make_c17();
  EXPECT_TRUE(feedback_edges(n).empty());
}

TEST(FeedbackEdges, BreakingThemRestoresAcyclicity) {
  // Two interlocking cycles.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a});
  const GateId g2 = n.add_gate(GateType::kOr, {g1, a});
  const GateId g3 = n.add_gate(GateType::kXor, {g2, g1});
  n.set_fanin(g1, {a, g3});
  n.set_fanin(g2, {g1, g3});
  n.mark_output(g3);
  ASSERT_TRUE(n.is_cyclic());
  const auto fb = feedback_edges(n);
  ASSERT_FALSE(fb.empty());
  Netlist cut = n;
  for (const Edge& e : fb) {
    // Redirect the feedback pin to a primary input to break the loop.
    std::vector<GateId> fanin = cut.gate(e.gate).fanin_vector();
    fanin[e.pin] = a;
    cut.set_fanin(e.gate, std::move(fanin));
  }
  EXPECT_FALSE(cut.is_cyclic());
}

TEST(Compact, RemovesDeadKeepsInterface) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("keyinput0");
  const GateId live = n.add_gate(GateType::kXor, {a, k}, "live");
  n.add_gate(GateType::kNot, {a}, "dead1");
  n.add_gate(GateType::kBuf, {k}, "dead2");
  n.mark_output(live, "y");
  std::vector<GateId> remap;
  const Netlist c = compact(n, &remap);
  EXPECT_EQ(c.num_gates(), 3u);
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_EQ(c.num_keys(), 1u);
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_EQ(remap[3], kNullGate);
  EXPECT_NE(remap[live], kNullGate);
}

TEST(Compact, PreservesFunction) {
  const Netlist n = make_circuit("i4", 6);
  const Netlist c = compact(n);
  const Simulator sim_a(n);
  const Simulator sim_b(c);
  std::mt19937_64 rng(2);
  std::vector<Word> in(n.num_inputs());
  for (Word& w : in) w = rng();
  const auto out_a = sim_a.run(in, {});
  const auto out_b = sim_b.run(in, {});
  for (std::size_t o = 0; o < out_a.size(); ++o) {
    EXPECT_EQ(out_a[o], out_b[o]);
  }
}

TEST(Compact, UnusedKeysKeptInOrder) {
  Netlist n;
  const GateId a = n.add_input("a");
  n.add_key("k0");
  n.add_key("k1");
  const GateId g = n.add_gate(GateType::kNot, {a});
  n.mark_output(g, "y");
  const Netlist c = compact(n);
  ASSERT_EQ(c.num_keys(), 2u);
  EXPECT_EQ(c.gate(c.keys()[0]).name, "k0");
  EXPECT_EQ(c.gate(c.keys()[1]).name, "k1");
}

TEST(Decompose, LowersEveryNaryGate) {
  const Netlist n = make_circuit("c3540", 8);
  const Netlist low = decompose_to_two_input(n);
  for (GateId g = 0; g < low.num_gates(); ++g) {
    const Gate& gate = low.gate(g);
    if (gate.type == GateType::kMux) continue;
    EXPECT_LE(gate.fanin.size(), 2u);
  }
  EXPECT_GE(low.num_logic_gates(), n.num_logic_gates());
}

TEST(Decompose, PreservesFunction) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    GeneratorConfig config;
    config.num_inputs = 10;
    config.num_outputs = 5;
    config.num_gates = 120;
    config.max_fanin = 5;
    config.seed = seed;
    const Netlist n = generate_circuit(config);
    const Netlist low = decompose_to_two_input(n);
    const Simulator sim_a(n);
    const Simulator sim_b(low);
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 8; ++round) {
      std::vector<Word> in(n.num_inputs());
      for (Word& w : in) w = rng();
      const auto out_a = sim_a.run(in, {});
      const auto out_b = sim_b.run(in, {});
      for (std::size_t o = 0; o < out_a.size(); ++o) {
        ASSERT_EQ(out_a[o], out_b[o]) << "seed " << seed;
      }
    }
  }
}

TEST(Decompose, OddFaninAndEveryFamily) {
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(n.add_input("x"));
  for (const GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                           GateType::kNor, GateType::kXor, GateType::kXnor}) {
    n.mark_output(n.add_gate(t, ins), std::string(to_string(t)));
  }
  const Netlist low = decompose_to_two_input(n);
  const Simulator sim_a(n);
  const Simulator sim_b(low);
  std::mt19937_64 rng(4);
  std::vector<Word> in(5);
  for (Word& w : in) w = rng();
  EXPECT_EQ(sim_a.run(in, {}), sim_b.run(in, {}));
}

TEST(Decompose, RejectsCyclic) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g, {a, g});
  n.mark_output(g);
  EXPECT_THROW(decompose_to_two_input(n), std::invalid_argument);
}

TEST(SignalProbabilities, BasicGates) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g_and = n.add_gate(GateType::kAnd, {a, b});
  const GateId g_or = n.add_gate(GateType::kOr, {a, b});
  const GateId g_xor = n.add_gate(GateType::kXor, {a, b});
  const GateId g_not = n.add_gate(GateType::kNot, {g_and});
  n.mark_output(g_not);
  const auto p = signal_probabilities(n);
  EXPECT_NEAR(p[g_and], 0.25, 1e-9);
  EXPECT_NEAR(p[g_or], 0.75, 1e-9);
  EXPECT_NEAR(p[g_xor], 0.5, 1e-9);
  EXPECT_NEAR(p[g_not], 0.75, 1e-9);
}

TEST(SignalProbabilities, DeepAndTreeSkews) {
  // An 8-input AND tree: p = 1/256 — the Anti-SAT tell-tale.
  Netlist n;
  std::vector<GateId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(n.add_input("x"));
  while (nodes.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < nodes.size(); i += 2) {
      next.push_back(n.add_gate(GateType::kAnd, {nodes[i], nodes[i + 1]}));
    }
    nodes = next;
  }
  n.mark_output(nodes[0]);
  const auto p = signal_probabilities(n);
  EXPECT_NEAR(p[nodes[0]], 1.0 / 256.0, 1e-9);
}

TEST(SignalProbabilities, CyclicRelaxationStaysInRange) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g1, {a, g1});
  n.mark_output(g1);
  const auto p = signal_probabilities(n);
  EXPECT_GE(p[g1], 0.0);
  EXPECT_LE(p[g1], 1.0);
}

}  // namespace
}  // namespace fl::netlist
