// Structural analysis: reachability, liveness, feedback edges, compaction,
// signal probabilities.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "core/full_lock.h"
#include "netlist/generator.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"
#include "netlist/structure.h"

namespace fl::netlist {
namespace {

TEST(Reachability, AgreesWithFanoutCone) {
  const Netlist n = make_circuit("c432", 2);
  Reachability reach(n);
  const GateId src = n.inputs()[0];
  const auto cone = n.fanout_cone(src);
  for (GateId g = 0; g < n.num_gates(); g += 7) {
    EXPECT_EQ(reach.reaches(src, g), static_cast<bool>(cone[g]));
  }
}

TEST(LiveGates, DeadLogicDetected) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId live = n.add_gate(GateType::kNot, {a}, "live");
  const GateId dead = n.add_gate(GateType::kBuf, {a}, "dead");
  n.mark_output(live, "y");
  const auto lv = live_gates(n);
  EXPECT_TRUE(lv[live]);
  EXPECT_FALSE(lv[dead]);
  EXPECT_TRUE(lv[a]);
}

TEST(FeedbackEdges, EmptyOnDag) {
  const Netlist n = make_c17();
  EXPECT_TRUE(feedback_edges(n).empty());
}

TEST(FeedbackEdges, BreakingThemRestoresAcyclicity) {
  // Two interlocking cycles.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a});
  const GateId g2 = n.add_gate(GateType::kOr, {g1, a});
  const GateId g3 = n.add_gate(GateType::kXor, {g2, g1});
  n.set_fanin(g1, {a, g3});
  n.set_fanin(g2, {g1, g3});
  n.mark_output(g3);
  ASSERT_TRUE(n.is_cyclic());
  const auto fb = feedback_edges(n);
  ASSERT_FALSE(fb.empty());
  Netlist cut = n;
  for (const Edge& e : fb) {
    // Redirect the feedback pin to a primary input to break the loop.
    std::vector<GateId> fanin = cut.gate(e.gate).fanin_vector();
    fanin[e.pin] = a;
    cut.set_fanin(e.gate, std::move(fanin));
  }
  EXPECT_FALSE(cut.is_cyclic());
}

TEST(Compact, RemovesDeadKeepsInterface) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("keyinput0");
  const GateId live = n.add_gate(GateType::kXor, {a, k}, "live");
  n.add_gate(GateType::kNot, {a}, "dead1");
  n.add_gate(GateType::kBuf, {k}, "dead2");
  n.mark_output(live, "y");
  std::vector<GateId> remap;
  const Netlist c = compact(n, &remap);
  EXPECT_EQ(c.num_gates(), 3u);
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_EQ(c.num_keys(), 1u);
  EXPECT_EQ(c.num_outputs(), 1u);
  EXPECT_EQ(remap[3], kNullGate);
  EXPECT_NE(remap[live], kNullGate);
}

TEST(Compact, PreservesFunction) {
  const Netlist n = make_circuit("i4", 6);
  const Netlist c = compact(n);
  const Simulator sim_a(n);
  const Simulator sim_b(c);
  std::mt19937_64 rng(2);
  std::vector<Word> in(n.num_inputs());
  for (Word& w : in) w = rng();
  const auto out_a = sim_a.run(in, {});
  const auto out_b = sim_b.run(in, {});
  for (std::size_t o = 0; o < out_a.size(); ++o) {
    EXPECT_EQ(out_a[o], out_b[o]);
  }
}

TEST(Compact, UnusedKeysKeptInOrder) {
  Netlist n;
  const GateId a = n.add_input("a");
  n.add_key("k0");
  n.add_key("k1");
  const GateId g = n.add_gate(GateType::kNot, {a});
  n.mark_output(g, "y");
  const Netlist c = compact(n);
  ASSERT_EQ(c.num_keys(), 2u);
  EXPECT_EQ(c.gate(c.keys()[0]).name, "k0");
  EXPECT_EQ(c.gate(c.keys()[1]).name, "k1");
}

TEST(Decompose, LowersEveryNaryGate) {
  const Netlist n = make_circuit("c3540", 8);
  const Netlist low = decompose_to_two_input(n);
  for (GateId g = 0; g < low.num_gates(); ++g) {
    const Gate& gate = low.gate(g);
    if (gate.type == GateType::kMux) continue;
    EXPECT_LE(gate.fanin.size(), 2u);
  }
  EXPECT_GE(low.num_logic_gates(), n.num_logic_gates());
}

TEST(Decompose, PreservesFunction) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    GeneratorConfig config;
    config.num_inputs = 10;
    config.num_outputs = 5;
    config.num_gates = 120;
    config.max_fanin = 5;
    config.seed = seed;
    const Netlist n = generate_circuit(config);
    const Netlist low = decompose_to_two_input(n);
    const Simulator sim_a(n);
    const Simulator sim_b(low);
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 8; ++round) {
      std::vector<Word> in(n.num_inputs());
      for (Word& w : in) w = rng();
      const auto out_a = sim_a.run(in, {});
      const auto out_b = sim_b.run(in, {});
      for (std::size_t o = 0; o < out_a.size(); ++o) {
        ASSERT_EQ(out_a[o], out_b[o]) << "seed " << seed;
      }
    }
  }
}

TEST(Decompose, OddFaninAndEveryFamily) {
  Netlist n;
  std::vector<GateId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(n.add_input("x"));
  for (const GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                           GateType::kNor, GateType::kXor, GateType::kXnor}) {
    n.mark_output(n.add_gate(t, ins), std::string(to_string(t)));
  }
  const Netlist low = decompose_to_two_input(n);
  const Simulator sim_a(n);
  const Simulator sim_b(low);
  std::mt19937_64 rng(4);
  std::vector<Word> in(5);
  for (Word& w : in) w = rng();
  EXPECT_EQ(sim_a.run(in, {}), sim_b.run(in, {}));
}

TEST(Decompose, RejectsCyclic) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g, {a, g});
  n.mark_output(g);
  EXPECT_THROW(decompose_to_two_input(n), std::invalid_argument);
}

TEST(SignalProbabilities, BasicGates) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g_and = n.add_gate(GateType::kAnd, {a, b});
  const GateId g_or = n.add_gate(GateType::kOr, {a, b});
  const GateId g_xor = n.add_gate(GateType::kXor, {a, b});
  const GateId g_not = n.add_gate(GateType::kNot, {g_and});
  n.mark_output(g_not);
  const auto p = signal_probabilities(n);
  EXPECT_NEAR(p[g_and], 0.25, 1e-9);
  EXPECT_NEAR(p[g_or], 0.75, 1e-9);
  EXPECT_NEAR(p[g_xor], 0.5, 1e-9);
  EXPECT_NEAR(p[g_not], 0.75, 1e-9);
}

TEST(SignalProbabilities, DeepAndTreeSkews) {
  // An 8-input AND tree: p = 1/256 — the Anti-SAT tell-tale.
  Netlist n;
  std::vector<GateId> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(n.add_input("x"));
  while (nodes.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < nodes.size(); i += 2) {
      next.push_back(n.add_gate(GateType::kAnd, {nodes[i], nodes[i + 1]}));
    }
    nodes = next;
  }
  n.mark_output(nodes[0]);
  const auto p = signal_probabilities(n);
  EXPECT_NEAR(p[nodes[0]], 1.0 / 256.0, 1e-9);
}

TEST(SignalProbabilities, CyclicRelaxationStaysInRange) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g1, {a, g1});
  n.mark_output(g1);
  const auto p = signal_probabilities(n);
  EXPECT_GE(p[g1], 0.0);
  EXPECT_LE(p[g1], 1.0);
}

TEST(KeyConePartition, PartitionInvariantsOnLockedCircuit) {
  const Netlist original = make_circuit("c432", 21);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4}));
  const Netlist& net = locked.netlist;
  ASSERT_FALSE(net.is_cyclic());
  KeyConePartition partition(net);

  // Key inputs are in the cone, and cone membership is fanout-closed: a
  // gate with a cone fanin is itself in the cone.
  for (const GateId k : net.keys()) EXPECT_TRUE(partition.in_cone(k));
  for (GateId g = 0; g < static_cast<GateId>(net.num_gates()); ++g) {
    if (is_source(net.gate_type(g))) continue;
    bool cone_fanin = false;
    for (const GateId f : net.fanin(g)) cone_fanin |= partition.in_cone(f);
    if (cone_fanin) {
      EXPECT_TRUE(partition.in_cone(g)) << g;
    }
  }

  std::unordered_set<GateId> cone(partition.cone_topo().begin(),
                                  partition.cone_topo().end());
  std::unordered_set<GateId> support(partition.support_topo().begin(),
                                     partition.support_topo().end());
  EXPECT_FALSE(cone.empty());
  // Every encoded cone gate is a cone member; taps never are. support_topo
  // covers the cone and is fanin-closed up to sources and other support
  // gates (exactly what a restricted full copy needs).
  for (const GateId g : partition.cone_topo()) {
    EXPECT_TRUE(partition.in_cone(g)) << g;
    EXPECT_TRUE(support.count(g)) << g;
  }
  for (const GateId t : partition.taps()) {
    EXPECT_FALSE(partition.in_cone(t)) << t;
  }
  for (const GateId g : partition.support_topo()) {
    for (const GateId f : net.fanin(g)) {
      EXPECT_TRUE(support.count(f) || is_source(net.gate_type(f)))
          << "support gate " << g << " reads unencoded net " << f;
    }
  }

  // Cone gates a cone copy reads but does not encode must be taps, so a
  // frontier sweep covers every external value the copy consumes.
  std::unordered_set<GateId> taps(partition.taps().begin(),
                                  partition.taps().end());
  for (const GateId g : partition.cone_topo()) {
    for (const GateId f : net.fanin(g)) {
      if (cone.count(f) || is_source(net.gate_type(f))) continue;
      EXPECT_TRUE(taps.count(f)) << "cone gate " << g << " reads net " << f
                                 << " that is neither cone nor tap";
    }
  }
}

TEST(KeyConePartition, FixedRegionMatchesFullSimulationAtTaps) {
  // The fixed region is key-free by construction: simulating it on the
  // primary inputs reproduces the full netlist's tap values under *any*
  // key, which is what lets the DIP loop sweep it once per pattern.
  const Netlist original = make_circuit("c880", 22);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({4, 4}));
  const Netlist& net = locked.netlist;
  ASSERT_FALSE(net.is_cyclic());
  KeyConePartition partition(net);
  const Netlist& fixed = partition.fixed_region();
  EXPECT_EQ(fixed.num_keys(), 0u);
  EXPECT_EQ(fixed.num_inputs(), net.num_inputs());
  EXPECT_EQ(fixed.num_outputs(), partition.taps().size());

  std::mt19937_64 rng(77);
  std::vector<Word> inputs(net.num_inputs());
  for (auto& w : inputs) w = rng();
  std::vector<Word> keys(net.num_keys());
  for (auto& w : keys) w = rng();

  const Simulator full_sim(net);
  const std::vector<Word> all_nets = full_sim.run_full(inputs, keys);
  const Simulator fixed_sim(fixed);
  const std::vector<Word> tap_values = fixed_sim.run(inputs, {});
  const std::span<const GateId> taps = partition.taps();
  ASSERT_EQ(tap_values.size(), taps.size());
  for (std::size_t t = 0; t < taps.size(); ++t) {
    EXPECT_EQ(tap_values[t], all_nets[taps[t]]) << "tap " << t;
  }
}

TEST(KeyConePartition, KeylessCircuitHasEmptyCone) {
  const Netlist n = make_circuit("c432", 23);
  KeyConePartition partition(n);
  EXPECT_TRUE(partition.cone_topo().empty());
  EXPECT_TRUE(partition.support_topo().empty());
  // Every output port is key-independent, so it must surface as a tap.
  std::unordered_set<GateId> taps(partition.taps().begin(),
                                  partition.taps().end());
  for (const auto& port : n.outputs()) EXPECT_TRUE(taps.count(port.gate));
}

TEST(KeyConePartition, RebuildsWhenNetlistChanges) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g, "y");
  KeyConePartition partition(n);
  EXPECT_TRUE(partition.cone_topo().empty());
  EXPECT_FALSE(partition.in_cone(g));

  // Structural edit: the partition tracks the netlist generation and
  // rebuilds lazily on the next query.
  const GateId k = n.add_key("k");
  const GateId x = n.add_gate(GateType::kXor, {g, k});
  n.mark_output(x, "z");
  EXPECT_TRUE(partition.in_cone(k));
  EXPECT_TRUE(partition.in_cone(x));
  EXPECT_FALSE(partition.in_cone(g));
  ASSERT_EQ(partition.cone_topo().size(), 1u);
  EXPECT_EQ(partition.cone_topo()[0], x);
}

TEST(KeyConePartition, CyclicTopoViewsThrow) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId k = n.add_key("k");
  const GateId g1 = n.add_gate(GateType::kOr, {a, k});
  n.set_fanin(g1, {g1, k});
  n.mark_output(g1, "y");
  ASSERT_TRUE(n.is_cyclic());
  KeyConePartition partition(n);
  EXPECT_TRUE(partition.in_cone(g1));  // membership works on any netlist
  EXPECT_THROW(partition.cone_topo(), std::invalid_argument);
  EXPECT_THROW(partition.fixed_region(), std::invalid_argument);
}

}  // namespace
}  // namespace fl::netlist
