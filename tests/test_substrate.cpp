// Million-gate substrate: arena netlist caches, wide SIMD simulation,
// structural-hashing rewrites, and exact oracle query accounting.
#include <gtest/gtest.h>

#include <random>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "core/full_lock.h"
#include "netlist/generator.h"
#include "netlist/optimize.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::netlist {
namespace {

using attacks::Oracle;
using Word = netlist::Word;

Netlist random_circuit(std::size_t gates, std::uint64_t seed,
                       std::size_t inputs = 12, std::size_t outputs = 6) {
  GeneratorConfig config;
  config.num_inputs = inputs;
  config.num_outputs = outputs;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

// --- arena + cached graph queries ----------------------------------------

TEST(Arena, GenerationBumpsOnEveryEdit) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  std::uint64_t gen = n.generation();
  const GateId g = n.add_gate(GateType::kAnd, {a, b});
  EXPECT_GT(n.generation(), gen);
  gen = n.generation();
  n.replace_fanin_of(g, b, a);
  EXPECT_GT(n.generation(), gen);
  gen = n.generation();
  n.set_fanin(g, {a, b});
  EXPECT_GT(n.generation(), gen);
  gen = n.generation();
  n.retype(g, GateType::kOr);
  EXPECT_GT(n.generation(), gen);
}

TEST(Arena, CachedFanoutReflectsEdits) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, b});
  const GateId g2 = n.add_gate(GateType::kOr, {a, g1});
  n.mark_output(g2, "y");

  auto row = n.fanout(a);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], g1);
  EXPECT_EQ(row[1], g2);

  // Rewire g2 away from a; the cache must rebuild, not serve stale rows.
  n.replace_fanin_of(g2, a, b);
  row = n.fanout(a);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], g1);
  EXPECT_EQ(n.fanout(b).size(), 2u);
}

TEST(Arena, FanoutRowsAreDeduplicated) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kAnd, {a, a});
  (void)g;
  ASSERT_EQ(n.fanout(a).size(), 1u);
}

TEST(Arena, CycleDetectionTracksSetFanin) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a});
  const GateId g2 = n.add_gate(GateType::kNot, {g1});
  n.mark_output(g2, "y");
  EXPECT_FALSE(n.is_cyclic());
  EXPECT_EQ(n.topo_span().size(), n.num_gates());

  n.set_fanin(g1, {a, g2});  // back edge g2 -> g1
  EXPECT_TRUE(n.is_cyclic());
  EXPECT_TRUE(n.topo_span().empty());
  EXPECT_FALSE(n.topological_order().has_value());

  n.set_fanin(g1, {a, a});
  EXPECT_FALSE(n.is_cyclic());
}

TEST(Arena, GateSnapshotSurvivesArenaGrowth) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kAnd, {a, b});
  const Gate snapshot = n.gate(g);  // owning copy, not a view
  // Force arena reallocation.
  GateId prev = g;
  for (int i = 0; i < 10000; ++i) {
    prev = n.add_gate(GateType::kNot, {prev});
  }
  EXPECT_EQ(snapshot.type, GateType::kAnd);
  ASSERT_EQ(snapshot.fanin.size(), 2u);
  EXPECT_EQ(snapshot.fanin[0], a);
  EXPECT_EQ(snapshot.fanin[1], b);
}

TEST(Arena, GrowingSetFaninRelocatesSegment) {
  Netlist n;
  std::vector<GateId> in;
  for (int i = 0; i < 6; ++i) in.push_back(n.add_input("i" + std::to_string(i)));
  const GateId g = n.add_gate(GateType::kAnd, {in[0], in[1]});
  const GateId h = n.add_gate(GateType::kOr, {in[2], in[3]});
  n.set_fanin(g, in);  // grows 2 -> 6, relocates
  ASSERT_EQ(n.fanin_size(g), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(n.fanin(g)[i], in[i]);
  // The neighbour's fanin must be untouched by the relocation.
  ASSERT_EQ(n.fanin_size(h), 2u);
  EXPECT_EQ(n.fanin(h)[0], in[2]);
  n.validate();
}

// --- wide SIMD simulation -------------------------------------------------

// run_batch must agree with the legacy per-word run() on random circuits,
// including a partial final block (n_words not a multiple of kSimdWords).
TEST(WideSim, MatchesLegacyRunOnRandomCircuits) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Netlist net = random_circuit(400, seed);
    const Simulator sim(net);
    const std::size_t n_in = net.num_inputs();
    const std::size_t n_out = net.num_outputs();
    const std::size_t n_words = 13;  // 1 full 8-word block + 5-word tail
    std::mt19937_64 rng(seed * 77 + 1);
    std::vector<Word> inputs(n_in * n_words);
    for (Word& w : inputs) w = rng();

    Simulator::Scratch scratch;
    std::vector<Word> wide(n_out * n_words);
    sim.run_batch(inputs, {}, n_words, scratch, wide);

    std::vector<Word> in_w(n_in);
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_in; ++i) in_w[i] = inputs[i * n_words + w];
      const std::vector<Word> out = sim.run(in_w, {});
      for (std::size_t o = 0; o < n_out; ++o) {
        EXPECT_EQ(wide[o * n_words + w], out[o])
            << "seed " << seed << " word " << w << " output " << o;
      }
    }
  }
}

TEST(WideSim, HandlesArityAboveEight) {
  Netlist n;
  std::vector<GateId> in;
  for (int i = 0; i < 12; ++i) in.push_back(n.add_input("i" + std::to_string(i)));
  n.mark_output(n.add_gate(GateType::kAnd, in), "all");
  n.mark_output(n.add_gate(GateType::kXor, in), "parity");
  const Simulator sim(n);
  std::mt19937_64 rng(99);
  const std::size_t n_words = 3;
  std::vector<Word> inputs(in.size() * n_words);
  for (Word& w : inputs) w = rng();
  Simulator::Scratch scratch;
  std::vector<Word> wide(2 * n_words);
  sim.run_batch(inputs, {}, n_words, scratch, wide);
  std::vector<Word> in_w(in.size());
  for (std::size_t w = 0; w < n_words; ++w) {
    for (std::size_t i = 0; i < in.size(); ++i) in_w[i] = inputs[i * n_words + w];
    const std::vector<Word> out = sim.run(in_w, {});
    EXPECT_EQ(wide[0 * n_words + w], out[0]);
    EXPECT_EQ(wide[1 * n_words + w], out[1]);
  }
}

TEST(WideSim, BroadcastKeysMatchPerWordKeys) {
  const Netlist original = random_circuit(300, 5);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {8}, core::ClnTopology::kShuffleBlocking, core::CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.5);
  config.seed = 3;
  const core::LockedCircuit locked = core::full_lock(original, config);
  const Simulator sim(locked.netlist);
  const std::size_t n_in = locked.netlist.num_inputs();
  const std::size_t n_key = locked.netlist.num_keys();
  const std::size_t n_out = locked.netlist.num_outputs();
  const std::size_t n_words = 9;
  std::mt19937_64 rng(17);
  std::vector<Word> inputs(n_in * n_words);
  for (Word& w : inputs) w = rng();
  std::vector<Word> key_one(n_key);
  for (std::size_t k = 0; k < n_key; ++k) {
    key_one[k] = locked.correct_key[k] ? ~Word{0} : Word{0};
  }
  std::vector<Word> key_wide(n_key * n_words);
  for (std::size_t k = 0; k < n_key; ++k) {
    for (std::size_t w = 0; w < n_words; ++w) {
      key_wide[k * n_words + w] = key_one[k];
    }
  }
  Simulator::Scratch scratch;
  std::vector<Word> out_bcast(n_out * n_words), out_wide(n_out * n_words);
  sim.run_batch(inputs, key_one, n_words, scratch, out_bcast);
  sim.run_batch(inputs, key_wide, n_words, scratch, out_wide);
  EXPECT_EQ(out_bcast, out_wide);
}

TEST(WideSim, RejectsMismatchedSizes) {
  const Netlist net = random_circuit(50, 4);
  const Simulator sim(net);
  Simulator::Scratch scratch;
  std::vector<Word> inputs(net.num_inputs() * 2);
  std::vector<Word> outputs(net.num_outputs() * 2);
  EXPECT_THROW(sim.run_batch(inputs, {}, 3, scratch, outputs),
               std::invalid_argument);
  EXPECT_THROW(
      sim.run_batch(inputs, std::vector<Word>(1), 2, scratch, outputs),
      std::invalid_argument);
  std::vector<Word> short_out(net.num_outputs());
  EXPECT_THROW(sim.run_batch(inputs, {}, 2, scratch, short_out),
               std::invalid_argument);
}

// --- cyclic convergence-mask semantics ------------------------------------

// L = XOR(a, L): bits with a=0 hold their initial value (converged), bits
// with a=1 oscillate forever (non-converged). The mask must be exactly ~a.
TEST(CyclicSim, ConvergenceMaskIsPerPattern) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId loop = n.add_gate(GateType::kAnd, {a, a});
  n.set_fanin(loop, {a, loop});
  n.retype(loop, GateType::kXor);
  n.mark_output(loop, "y");
  ASSERT_TRUE(n.is_cyclic());

  const Word pattern = 0xF0F0A5A5DEADBEEFull;
  const CyclicSimResult r = simulate_cyclic(n, std::vector<Word>{pattern}, {});
  EXPECT_EQ(r.converged, ~pattern);
  // Converged lanes held the all-zero initial state.
  EXPECT_EQ(r.outputs[0] & r.converged, Word{0});
}

TEST(CyclicSim, StableCycleConvergesEverywhere) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId loop = n.add_gate(GateType::kAnd, {a, a});
  n.set_fanin(loop, {a, loop});  // L = a & L: settles at 0
  n.mark_output(loop, "y");
  ASSERT_TRUE(n.is_cyclic());
  const CyclicSimResult r =
      simulate_cyclic(n, std::vector<Word>{0x123456789ABCDEF0ull}, {});
  EXPECT_EQ(r.converged, ~Word{0});
  EXPECT_EQ(r.outputs[0], Word{0});
}

// --- structural hashing / optimize ----------------------------------------

TEST(Strash, PreservesFunctionOnRandomCircuits) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Netlist net = random_circuit(600, seed);
    OptimizeStats stats;
    const Netlist opt = optimize(net, &stats);
    EXPECT_LE(opt.num_gates(), net.num_gates());
    const Simulator sim_a(net), sim_b(opt);
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 8; ++round) {
      std::vector<Word> in(net.num_inputs());
      for (Word& w : in) w = rng();
      EXPECT_EQ(sim_a.run(in, {}), sim_b.run(in, {})) << "seed " << seed;
    }
  }
}

TEST(Strash, PreservesLockedFunctionUnderCorrectKey) {
  const Netlist original = random_circuit(300, 21);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {8}, core::ClnTopology::kShuffleBlocking, core::CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.5);
  config.seed = 9;
  const core::LockedCircuit locked = core::full_lock(original, config);
  const Netlist opt = optimize(locked.netlist);
  ASSERT_EQ(opt.num_keys(), locked.netlist.num_keys());
  const Simulator sim_a(locked.netlist), sim_b(opt);
  std::vector<Word> key(locked.correct_key.size());
  for (std::size_t k = 0; k < key.size(); ++k) {
    key[k] = locked.correct_key[k] ? ~Word{0} : Word{0};
  }
  std::mt19937_64 rng(22);
  for (int round = 0; round < 8; ++round) {
    std::vector<Word> in(original.num_inputs());
    for (Word& w : in) w = rng();
    EXPECT_EQ(sim_a.run(in, key), sim_b.run(in, key));
  }
}

TEST(Strash, OneLevelAndAbsorption) {
  // AND(AND(a,b), b) = AND(a,b): the outer gate is absorbed away.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId inner = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(n.add_gate(GateType::kAnd, {inner, b}), "y");
  OptimizeStats stats;
  const Netlist opt = optimize(n, &stats);
  EXPECT_GE(stats.absorptions_applied, 1u);
  EXPECT_EQ(opt.num_logic_gates(), 1u);  // just AND(a,b)
}

TEST(Strash, OneLevelAndContradiction) {
  // AND(AND(a, ~b), b) = 0.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId nb = n.add_gate(GateType::kNot, {b});
  const GateId inner = n.add_gate(GateType::kAnd, {a, nb});
  n.mark_output(n.add_gate(GateType::kAnd, {inner, b}), "y");
  OptimizeStats stats;
  const Netlist opt = optimize(n, &stats);
  EXPECT_GE(stats.absorptions_applied, 1u);
  EXPECT_EQ(opt.num_logic_gates(), 0u);  // constant 0
  const std::vector<bool> out = eval_once(opt, {true, true}, {});
  EXPECT_FALSE(out[0]);
}

TEST(Strash, OneLevelXorCancellation) {
  // XOR(XOR(a,b), b) = a.
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId inner = n.add_gate(GateType::kXor, {a, b});
  n.mark_output(n.add_gate(GateType::kXor, {inner, b}), "y");
  OptimizeStats stats;
  const Netlist opt = optimize(n, &stats);
  EXPECT_GE(stats.xor_pairs_cancelled, 1u);
  EXPECT_EQ(opt.num_logic_gates(), 0u);  // output is the wire a
  for (const bool av : {false, true}) {
    for (const bool bv : {false, true}) {
      EXPECT_EQ(eval_once(opt, {av, bv}, {})[0], av);
    }
  }
}

// --- oracle accounting at the attack level --------------------------------

// The plain SAT attack queries the oracle exactly once per DIP: the counter
// must equal the iteration count, with no flat-64 inflation anywhere.
TEST(Accounting, SatAttackQueriesEqualIterations) {
  const Netlist original = random_circuit(200, 31, 10, 5);
  core::FullLockConfig config = core::FullLockConfig::with_plrs(
      {8}, core::ClnTopology::kShuffleBlocking, core::CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.5);
  config.seed = 5;
  const core::LockedCircuit locked = core::full_lock(original, config);
  const Oracle oracle(original);
  attacks::AttackOptions options;
  options.timeout_s = 60.0;
  const attacks::AttackResult result =
      attacks::SatAttack(options).run(locked, oracle);
  ASSERT_EQ(result.status, attacks::AttackStatus::kSuccess);
  EXPECT_EQ(oracle.num_queries(), result.iterations);
  EXPECT_EQ(oracle.num_queries(), result.oracle_queries);
}

}  // namespace
}  // namespace fl::netlist
