// End-to-end tests of the serve daemon over a real AF_UNIX socket: protocol
// round trips through ClientConn/ServeClient, graceful drain with a
// concurrent client, overload backpressure, injected connection drops,
// journal write faults, and the headline robustness property — kill -9 of
// the daemon mid-sweep, restart, and resume from the durable checkpoint
// with no lost or duplicated records.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "netlist/bench_io.h"
#include "netlist/profiles.h"
#include "runtime/fault.h"
#include "runtime/jsonl.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace fl::serve {
namespace {

using runtime::json_int_field;
using runtime::json_string_field;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Runs a daemon plus its serve_forever loop on a background thread, without
// touching the process-global signal handler. Shutdown is driven by
// request_shutdown() (or a client shutdown op), exactly the drain path a
// SIGTERM takes after the handler sets its token.
struct DaemonHarness {
  Daemon daemon;
  std::thread thread;
  int rc = -1;

  DaemonHarness(ServeArgs args, JobRunner runner,
                const runtime::FaultInjector* faults = nullptr)
      : daemon(std::move(args), std::move(runner), faults) {
    daemon.start();  // listener is up before any test client connects
    thread = std::thread([this] { rc = daemon.serve_forever(false); });
  }

  int shutdown_and_join() {
    daemon.request_shutdown();
    if (thread.joinable()) thread.join();
    return rc;
  }

  ~DaemonHarness() { shutdown_and_join(); }
};

// A bare-bones protocol client for tests that need mid-stream control the
// ServeClient convenience wrappers hide (e.g. killing the daemon after the
// first cell event).
class RawClient {
 public:
  RawClient(const std::string& path, int recv_timeout_s = 30)
      : fd_(connect_unix(path)) {
    timeval tv{};
    tv.tv_sec = recv_timeout_s;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  bool send(const std::string& line) {
    std::string buf = line;
    buf.push_back('\n');
    std::size_t sent = 0;
    while (sent < buf.size()) {
      const ssize_t n =
          ::send(fd_, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // One line, or nullopt on EOF / recv timeout.
  std::optional<std::string> read_line() {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Reads until a line whose "event" matches `type`; nullopt on EOF.
  std::optional<std::string> wait_event(const std::string& type) {
    while (auto line = read_line()) {
      if (json_string_field(*line, "event") == type) return line;
    }
    return std::nullopt;
  }

 private:
  int fd_;
  std::string buf_;
};

JobSpec attack_spec() {
  JobSpec spec;
  spec.kind = JobKind::kAttack;
  spec.locked_path = "l.bench";  // synthetic runners never open these
  spec.oracle_path = "o.bench";
  return spec;
}

JobSpec sweep_spec(const std::string& jsonl) {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.bench_path = "c.bench";
  spec.jsonl_path = jsonl;
  return spec;
}

JobRunner quick_runner() {
  return [](const JobSpec&, JobContext&) {
    JobResult result;
    result.fields.field("ok", true);
    return result;
  };
}

// Polls its token forever; reports a clean resumable interruption when the
// daemon asks it to stop.
JobRunner polling_runner() {
  return [](const JobSpec&, JobContext& ctx) {
    while (!ctx.cancel->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    JobResult result;
    result.interrupted = true;
    return result;
  };
}

TEST(ServeDaemon, SubmitStatusCancelShutdownOverSocket) {
  ServeArgs args;
  args.socket_path = temp_path("fl_sd1.sock");
  DaemonHarness harness(args, quick_runner());

  std::ostringstream out;
  ServeClient submit(args.socket_path);
  EXPECT_EQ(submit.submit_and_stream(attack_spec(), out), ClientExit::kDone);
  const std::string streamed = out.str();
  // No "accepted" assertion: a fast job's terminal may legitimately beat the
  // accepted line onto the wire (see the ordering note in protocol.h), and
  // the client stops reading at the terminal.
  EXPECT_NE(streamed.find("\"event\":\"terminal\""), std::string::npos);
  EXPECT_NE(streamed.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(streamed.find("\"ok\":true"), std::string::npos);  // runner field

  std::ostringstream status_out;
  ServeClient status(args.socket_path);
  EXPECT_EQ(status.status(std::nullopt, status_out), ClientExit::kDone);
  EXPECT_NE(status_out.str().find("\"event\":\"status\""), std::string::npos);
  EXPECT_NE(status_out.str().find("\"done\":1"), std::string::npos);

  std::ostringstream cancel_out;
  ServeClient cancel(args.socket_path);
  EXPECT_EQ(cancel.cancel(999, cancel_out), ClientExit::kFailed);  // unknown

  std::ostringstream shutdown_out;
  ServeClient shutdown(args.socket_path);
  EXPECT_EQ(shutdown.shutdown(shutdown_out), ClientExit::kDone);
  EXPECT_EQ(harness.shutdown_and_join(), 0);
}

TEST(ServeDaemon, DrainInterruptsJobAndJournalKeepsItPending) {
  ServeArgs args;
  args.socket_path = temp_path("fl_sd2.sock");
  args.journal_path = temp_path("fl_sd2.journal");
  int rc = -1;
  {
    DaemonHarness harness(args, polling_runner());
    RawClient client(args.socket_path);
    ASSERT_TRUE(client.send(submit_line(sweep_spec("ckpt.jsonl"))));
    ASSERT_TRUE(client.wait_event("started").has_value());

    // SIGTERM path: drain while the job runs and the client streams.
    harness.daemon.request_shutdown();
    const auto terminal = client.wait_event("terminal");
    ASSERT_TRUE(terminal.has_value());
    EXPECT_EQ(json_string_field(*terminal, "state"), "interrupted");
    rc = harness.shutdown_and_join();
  }
  EXPECT_EQ(rc, 0);

  // The journal deliberately has no terminal record: the job is pending and
  // the next daemon must resume it — as a detached job (its client is gone)
  // continuing its checkpoint (resume=true).
  const auto replay = JobJournal::replay(args.journal_path);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].first, 1u);
  EXPECT_TRUE(replay.pending[0].second.resume);
  EXPECT_TRUE(replay.pending[0].second.detach);
  std::remove(args.journal_path.c_str());
}

TEST(ServeDaemon, RejectsSubmissionsOnceDraining) {
  ServeArgs args;
  args.socket_path = temp_path("fl_sd3.sock");
  DaemonHarness harness(args, polling_runner());
  RawClient running(args.socket_path);
  ASSERT_TRUE(running.send(submit_line(attack_spec())));
  ASSERT_TRUE(running.wait_event("started").has_value());

  harness.daemon.request_shutdown();
  // The daemon stops admitting the moment shutdown is requested; the already
  // connected client's next submit bounces instead of hanging the drain.
  // (The connection may also be torn down by the drain first — both are
  // correct; what must not happen is a second job getting accepted.)
  if (running.send(submit_line(attack_spec()))) {
    const auto rejected = running.wait_event("rejected");
    if (rejected.has_value()) {
      EXPECT_EQ(json_string_field(*rejected, "reason"), "draining");
    }
  }
  EXPECT_EQ(harness.shutdown_and_join(), 0);
  EXPECT_EQ(harness.daemon.scheduler().stats().done, 0u);
}

TEST(ServeDaemon, OverloadedQueueRejectsWithBackpressure) {
  std::atomic<bool> release{false};
  ServeArgs args;
  args.socket_path = temp_path("fl_sd4.sock");
  args.workers = 1;
  args.max_queue = 1;
  DaemonHarness harness(args, [&](const JobSpec&, JobContext&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{};
  });

  // Fire-and-forget submissions: one claims the worker, one fills the
  // bounded queue, the third must bounce with "overloaded".
  JobSpec detached = attack_spec();
  detached.detach = true;
  std::ostringstream out;
  ServeClient first(args.socket_path);
  ASSERT_EQ(first.submit_and_stream(detached, out), ClientExit::kDone);
  while (harness.daemon.scheduler().stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ServeClient second(args.socket_path);
  ASSERT_EQ(second.submit_and_stream(detached, out), ClientExit::kDone);
  while (harness.daemon.scheduler().stats().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::ostringstream rejected_out;
  ServeClient third(args.socket_path);
  EXPECT_EQ(third.submit_and_stream(detached, rejected_out),
            ClientExit::kRejected);
  EXPECT_NE(rejected_out.str().find("overloaded"), std::string::npos);

  release.store(true);
  harness.daemon.scheduler().wait_idle();
  EXPECT_EQ(harness.shutdown_and_join(), 0);
}

TEST(ServeDaemon, InjectedStreamDropIsolatesThatClient) {
  // The daemon's first client-stream write drops the connection mid-stream.
  // That client loses its stream; the daemon and every later client keep
  // working — the drop is contained to one connection.
  const auto faults = runtime::FaultInjector::parse("site:serve.stream:drop");
  ServeArgs args;
  args.socket_path = temp_path("fl_sd5.sock");
  DaemonHarness harness(args, quick_runner(), &faults);

  std::ostringstream dropped_out;
  ServeClient dropped(args.socket_path);
  EXPECT_EQ(dropped.submit_and_stream(attack_spec(), dropped_out),
            ClientExit::kConnectionLost);

  std::ostringstream ok_out;
  ServeClient ok(args.socket_path);
  EXPECT_EQ(ok.submit_and_stream(attack_spec(), ok_out), ClientExit::kDone);
  EXPECT_EQ(harness.shutdown_and_join(), 0);
}

TEST(ServeDaemon, JournalWriteFaultRejectsInsteadOfLying) {
  // Every journal sync fails like a full disk. A job whose "accepted"
  // record cannot be made durable must be rejected — acknowledging it would
  // promise crash recovery the daemon cannot deliver.
  runtime::FaultInjector faults;
  faults.add(runtime::FaultSpec::at_write(
      static_cast<std::size_t>(runtime::JsonlWriter::sync_sequence()),
      runtime::FaultKind::kEWrite, /*count=*/1 << 20));
  ServeArgs args;
  args.socket_path = temp_path("fl_sd6.sock");
  args.journal_path = temp_path("fl_sd6.journal");
  DaemonHarness harness(args, quick_runner(), &faults);

  std::ostringstream out;
  ServeClient client(args.socket_path);
  EXPECT_EQ(client.submit_and_stream(attack_spec(), out),
            ClientExit::kRejected);
  EXPECT_NE(out.str().find("journal write failed"), std::string::npos);

  // The daemon itself is fine: status still answers.
  std::ostringstream status_out;
  ServeClient status(args.socket_path);
  EXPECT_EQ(status.status(std::nullopt, status_out), ClientExit::kDone);
  EXPECT_EQ(harness.shutdown_and_join(), 0);
  std::remove(args.journal_path.c_str());
}

TEST(ServeDaemon, KilledDaemonMidSweepRestartsAndResumes) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "fork-based crash test requires a unix target";
#else
  const std::string sock = temp_path("fl_sd7.sock");
  const std::string journal = temp_path("fl_sd7.journal");
  const std::string ckpt = temp_path("fl_sd7_ckpt.jsonl");
  const std::string bench = temp_path("fl_sd7_c432.bench");
  netlist::write_bench_file(netlist::make_circuit("c432", 7), bench);

  ServeArgs args;
  args.socket_path = sock;
  args.journal_path = journal;

  // The victim daemon runs the real lock/attack/sweep runner in a child
  // process, so kill -9 takes out exactly what a kernel OOM-kill would.
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    Daemon daemon(args);
    std::_Exit(daemon.serve_forever(/*install_signals=*/false));
  }

  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.bench_path = bench;
  spec.jsonl_path = ckpt;
  spec.sizes = {4};
  spec.replicas = 3;  // 3 cells: enough runway to die mid-sweep, cheap ones
  spec.seed = 17;
  const std::size_t cells = 3;

  // Wait for the child's listener, then submit and stream until the first
  // committed cell — the moment the checkpoint provably has durable work.
  std::optional<RawClient> client;
  for (int i = 0; i < 300 && !client.has_value(); ++i) {
    try {
      client.emplace(sock, /*recv_timeout_s=*/240);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  ASSERT_TRUE(client.has_value()) << "daemon child never started listening";
  ASSERT_TRUE(client->send(submit_line(spec)));
  ASSERT_TRUE(client->wait_event("cell").has_value());

  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_FALSE(client->wait_event("terminal").has_value());  // stream died

  // Durable state after the kill: a checkpoint with at least the header and
  // one cell, and a journal whose accepted record has no terminal — the job
  // is pending, to be resumed as a detached sweep.
  const std::string partial = slurp(ckpt);
  const std::vector<std::string> partial_lines = lines_of(partial);
  ASSERT_GE(partial_lines.size(), 2u);
  EXPECT_EQ(json_string_field(partial_lines[0], "record"), "run_header");
  {
    const auto replay = JobJournal::replay(journal);
    ASSERT_EQ(replay.pending.size(), 1u);
    EXPECT_EQ(replay.pending[0].first, 1u);
    EXPECT_TRUE(replay.pending[0].second.resume);
  }

  // Restart: the new daemon replays the journal and finishes the sweep from
  // the checkpoint. No client needed — the job is detached.
  {
    Daemon daemon(args);
    daemon.start();
    daemon.scheduler().wait_idle();
  }

  // The crash-time bytes are untouched (resume appends, never rewrites),
  // every cell appears exactly once in order, and the journal closed the
  // job out as done.
  const std::string final_text = slurp(ckpt);
  ASSERT_GE(final_text.size(), partial.size());
  EXPECT_EQ(final_text.compare(0, partial.size(), partial), 0);
  const std::vector<std::string> final_lines = lines_of(final_text);
  ASSERT_EQ(final_lines.size(), cells + 1);
  for (std::size_t i = 1; i < final_lines.size(); ++i) {
    EXPECT_EQ(json_int_field(final_lines[i], "cell"),
              static_cast<long long>(i - 1));
    EXPECT_NE(json_string_field(final_lines[i], "status"), "failed");
  }
  bool closed_done = false;
  for (const std::string& line : lines_of(slurp(journal))) {
    if (json_string_field(line, "event") == "terminal" &&
        json_int_field(line, "id") == 1) {
      EXPECT_EQ(json_string_field(line, "state"), "done");
      closed_done = true;
    }
  }
  EXPECT_TRUE(closed_done);

  std::remove(journal.c_str());
  std::remove(ckpt.c_str());
  std::remove(bench.c_str());
#endif
}

}  // namespace
}  // namespace fl::serve
