// Unit tests of the serve daemon's pieces below the socket: wire protocol
// parsing/validation, the crash-recovery job journal, the scheduler's fault
// isolation (throw/OOM/stall/wall budget, retries, priorities, admission
// control, drain), and the serve CLI flag validation. Daemon-over-socket
// behaviour lives in test_serve_daemon.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fault.h"
#include "runtime/jsonl.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace fl::serve {
namespace {

using runtime::json_bool_field;
using runtime::json_int_field;
using runtime::json_string_field;

// ---------------------------------------------------------------------------
// Protocol

JobSpec sweep_spec() {
  JobSpec spec;
  spec.kind = JobKind::kSweep;
  spec.priority = 7;
  spec.timeout_s = 12.5;
  spec.retries = 2;
  spec.memory_limit_mb = 512;
  spec.trace = true;
  spec.bench_path = "c.bench";
  spec.jsonl_path = "out.jsonl";
  spec.sizes = {4, 8};
  spec.replicas = 3;
  spec.seed = 99;
  spec.resume = true;
  spec.scheme = "interlock";
  spec.scheme_params = "fold=1,negate=0.5";
  spec.encode = "full";
  return spec;
}

TEST(ServeProtocol, SubmitRoundTripsEveryField) {
  const JobSpec spec = sweep_spec();
  const Request request = parse_request(submit_line(spec));
  ASSERT_EQ(request.op, Request::Op::kSubmit);
  const JobSpec& got = request.spec;
  EXPECT_EQ(got.kind, JobKind::kSweep);
  EXPECT_EQ(got.priority, 7);
  EXPECT_DOUBLE_EQ(got.timeout_s, 12.5);
  EXPECT_EQ(got.retries, 2);
  EXPECT_EQ(got.memory_limit_mb, 512u);
  EXPECT_TRUE(got.trace);
  EXPECT_FALSE(got.detach);
  EXPECT_EQ(got.bench_path, "c.bench");
  EXPECT_EQ(got.jsonl_path, "out.jsonl");
  EXPECT_EQ(got.sizes, (std::vector<int>{4, 8}));
  EXPECT_EQ(got.replicas, 3);
  EXPECT_EQ(got.seed, 99u);
  EXPECT_TRUE(got.resume);
  EXPECT_EQ(got.scheme, "interlock");
  EXPECT_EQ(got.scheme_params, "fold=1,negate=0.5");
  EXPECT_EQ(got.encode, "full");
}

TEST(ServeProtocol, ControlOpsRoundTrip) {
  EXPECT_EQ(parse_request(status_line()).op, Request::Op::kStatus);
  const Request one = parse_request(status_line(5));
  EXPECT_EQ(one.op, Request::Op::kStatus);
  EXPECT_EQ(one.id, 5u);
  const Request cancel = parse_request(cancel_line(3));
  EXPECT_EQ(cancel.op, Request::Op::kCancel);
  EXPECT_EQ(cancel.id, 3u);
  EXPECT_EQ(parse_request(shutdown_line()).op, Request::Op::kShutdown);
}

TEST(ServeProtocol, MalformedRequestsThrow) {
  EXPECT_THROW(parse_request("not json at all"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"dance\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"cancel\"}"), ProtocolError);  // no id
  EXPECT_THROW(parse_request("{\"op\":\"cancel\",\"id\":0}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"submit\"}"), ProtocolError);  // no kind
  EXPECT_THROW(parse_request("{\"op\":\"submit\",\"kind\":\"meta\"}"),
               ProtocolError);
}

TEST(ServeProtocol, StrictBoundsOnNumericFields) {
  const std::string base = "{\"op\":\"submit\",\"kind\":\"attack\","
                           "\"locked_path\":\"l\",\"oracle_path\":\"o\"";
  EXPECT_NO_THROW(parse_request(base + "}"));
  EXPECT_THROW(parse_request(base + ",\"priority\":1001}"), ProtocolError);
  EXPECT_THROW(parse_request(base + ",\"priority\":-1001}"), ProtocolError);
  EXPECT_THROW(parse_request(base + ",\"retries\":-1}"), ProtocolError);
  EXPECT_THROW(parse_request(base + ",\"timeout_s\":-2}"), ProtocolError);
  EXPECT_THROW(parse_request(base + ",\"timeout_s\":2e12}"), ProtocolError);
  EXPECT_THROW(parse_request(base + ",\"replicas\":0}"), ProtocolError);
}

TEST(ServeProtocol, ValidateSpecRequiresPathsPerKind) {
  JobSpec attack;
  attack.kind = JobKind::kAttack;
  EXPECT_THROW(validate_spec(attack), ProtocolError);
  attack.locked_path = "l.bench";
  EXPECT_THROW(validate_spec(attack), ProtocolError);
  attack.oracle_path = "o.bench";
  EXPECT_NO_THROW(validate_spec(attack));

  JobSpec sweep;
  sweep.kind = JobKind::kSweep;
  sweep.bench_path = "c.bench";
  EXPECT_THROW(validate_spec(sweep), ProtocolError);  // no jsonl_path
  sweep.jsonl_path = "out.jsonl";
  EXPECT_NO_THROW(validate_spec(sweep));
  sweep.sizes = {1};
  EXPECT_THROW(validate_spec(sweep), ProtocolError);
  sweep.sizes = {5000};
  EXPECT_THROW(validate_spec(sweep), ProtocolError);

  JobSpec lock;
  lock.kind = JobKind::kLock;
  lock.bench_path = "c.bench";
  EXPECT_THROW(validate_spec(lock), ProtocolError);  // no out_path
  lock.out_path = "locked.bench";
  EXPECT_NO_THROW(validate_spec(lock));
}

TEST(ServeProtocol, SchemeFieldsValidatedAtAdmission) {
  JobSpec lock;
  lock.kind = JobKind::kLock;
  lock.bench_path = "c.bench";
  lock.out_path = "locked.bench";
  // Any registry scheme with well-formed params is admitted...
  lock.scheme = "sfll-hd";
  lock.scheme_params = "keys=8,hd=1";
  EXPECT_NO_THROW(validate_spec(lock));
  // ...but a bad submit is rejected before it ever queues.
  lock.scheme = "nonesuch";
  EXPECT_THROW(validate_spec(lock), ProtocolError);
  lock.scheme = "sfll-hd";
  lock.scheme_params = "keys=4,hd=9";  // hd > keys
  EXPECT_THROW(validate_spec(lock), ProtocolError);
  lock.scheme_params = "kyes=8";  // unknown parameter
  EXPECT_THROW(validate_spec(lock), ProtocolError);

  JobSpec sweep;
  sweep.kind = JobKind::kSweep;
  sweep.bench_path = "c.bench";
  sweep.jsonl_path = "out.jsonl";
  sweep.scheme = "interlock";
  EXPECT_NO_THROW(validate_spec(sweep));
  sweep.attack = "nonesuch";
  EXPECT_THROW(validate_spec(sweep), ProtocolError);
  sweep.attack = "auto";
  sweep.encode = "sideways";
  EXPECT_THROW(validate_spec(sweep), ProtocolError);
  // cone + a scheme configured to force cycles: rejected at admission.
  sweep.encode = "cone";
  sweep.scheme = "full-lock";
  sweep.scheme_params = "cycle=force";
  EXPECT_THROW(validate_spec(sweep), ProtocolError);
  sweep.scheme_params = "";
  EXPECT_NO_THROW(validate_spec(sweep));

  // Attack jobs don't resolve scheme fields at admission (the scheme comes
  // from the locked file's provenance), but encode is still checked.
  JobSpec attack;
  attack.kind = JobKind::kAttack;
  attack.locked_path = "l.bench";
  attack.oracle_path = "o.bench";
  attack.scheme = "nonesuch";  // ignored for attacks
  EXPECT_NO_THROW(validate_spec(attack));
  attack.attack = "fall";
  EXPECT_NO_THROW(validate_spec(attack));
  attack.encode = "sideways";
  EXPECT_THROW(validate_spec(attack), ProtocolError);
}

// ---------------------------------------------------------------------------
// Journal

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(ServeJournal, MissingFileIsEmptyReplay) {
  const auto replay = JobJournal::replay(temp_path("fl_no_journal.jsonl"));
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.max_id, 0u);
  EXPECT_EQ(replay.records, 0u);
}

TEST(ServeJournal, AcceptedWithoutTerminalIsPending) {
  const std::string path = temp_path("fl_journal_pending.jsonl");
  {
    JobJournal journal(path);
    JobSpec done_spec;
    done_spec.kind = JobKind::kAttack;
    done_spec.locked_path = "l.bench";
    done_spec.oracle_path = "o.bench";
    journal.record_accepted(1, done_spec);
    journal.record_terminal(1, JobState::kDone, "", 1);
    journal.record_accepted(2, sweep_spec());
  }
  const auto replay = JobJournal::replay(path);
  EXPECT_EQ(replay.max_id, 2u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].first, 2u);
  const JobSpec& spec = replay.pending[0].second;
  EXPECT_EQ(spec.kind, JobKind::kSweep);
  EXPECT_EQ(spec.jsonl_path, "out.jsonl");
  // Replayed sweeps continue their checkpoint instead of truncating it, and
  // are detached — the submitting client is gone after a daemon restart.
  EXPECT_TRUE(spec.resume);
  EXPECT_TRUE(spec.detach);
}

TEST(ServeJournal, TornLastLineIsSkippedNotFatal) {
  const std::string path = temp_path("fl_journal_torn.jsonl");
  {
    JobJournal journal(path);
    journal.record_accepted(1, sweep_spec());
  }
  {
    // A record half-written when the power went: no newline, broken JSON.
    std::ofstream out(path, std::ios::app);
    out << "{\"record\":\"serve_job\",\"event\":\"ter";
  }
  const auto replay = JobJournal::replay(path);
  EXPECT_EQ(replay.max_id, 1u);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].first, 1u);
}

TEST(ServeJournal, WriteFaultSurfacesAsWriteFault) {
  const std::string path = temp_path("fl_journal_enospc.jsonl");
  runtime::FaultInjector faults;
  // Every durable sync from now on fails like a full disk would.
  faults.add(runtime::FaultSpec::at_write(
      static_cast<std::size_t>(runtime::JsonlWriter::sync_sequence()),
      runtime::FaultKind::kEWrite, /*count=*/1 << 20));
  JobJournal journal(path, &faults);
  EXPECT_THROW(journal.record_accepted(1, sweep_spec()),
               runtime::WriteFault);
}

// ---------------------------------------------------------------------------
// Scheduler

// Collects every event of every job; tests poll for terminal states.
class EventLog {
 public:
  EventFn fn() {
    return [this](const JobEvent& event) {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(event);
      cv_.notify_all();
    };
  }

  // Blocks until the job's terminal event arrives (fails the test after 30s).
  JobEvent wait_terminal(std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mu_);
    JobEvent found;
    const bool ok = cv_.wait_for(lock, std::chrono::seconds(30), [&] {
      for (const JobEvent& e : events_) {
        if (e.id == id && e.type == "terminal") {
          found = e;
          return true;
        }
      }
      return false;
    });
    EXPECT_TRUE(ok) << "no terminal event for job " << id;
    return found;
  }

  std::vector<JobEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t count(std::uint64_t id, const std::string& type) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const JobEvent& e : events_) {
      if (e.id == id && e.type == type) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<JobEvent> events_;
};

JobSpec quick_spec(int priority = 0) {
  JobSpec spec;
  spec.kind = JobKind::kAttack;
  spec.locked_path = "l.bench";
  spec.oracle_path = "o.bench";
  spec.priority = priority;
  return spec;
}

SchedulerConfig fast_config() {
  SchedulerConfig config;
  config.workers = 1;
  config.backoff_base_s = 0.005;
  config.backoff_cap_s = 0.02;
  config.watchdog_period_s = 0.002;
  return config;
}

TEST(ServeScheduler, RunsJobAndMergesRunnerFields) {
  Scheduler scheduler(fast_config(), [](const JobSpec&, JobContext& ctx) {
    JobResult result;
    result.fields.field("answer", 42);
    runtime::JsonObject note;
    note.field("step", 1);
    ctx.emit("trace", std::move(note));
    return result;
  });
  EventLog log;
  std::string reject;
  const std::uint64_t id = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(id, 0u);
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kDone);
  EXPECT_EQ(json_string_field(terminal.line, "state"), "done");
  EXPECT_EQ(json_int_field(terminal.line, "answer"), 42);
  EXPECT_EQ(log.count(id, "started"), 1u);
  EXPECT_EQ(log.count(id, "trace"), 1u);
  EXPECT_EQ(log.count(id, "terminal"), 1u);
  EXPECT_EQ(scheduler.stats().done, 1u);
}

TEST(ServeScheduler, PriorityOrdersQueuedJobs) {
  std::atomic<bool> release{false};
  std::mutex order_mu;
  std::vector<std::uint64_t> order;
  Scheduler scheduler(fast_config(),
                      [&](const JobSpec& spec, JobContext& ctx) {
                        if (spec.seed == 1) {  // the blocker
                          while (!release.load()) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(1));
                          }
                        } else {
                          std::lock_guard<std::mutex> lock(order_mu);
                          order.push_back(ctx.id);
                        }
                        return JobResult{};
                      });
  EventLog log;
  std::string reject;
  JobSpec blocker = quick_spec();
  blocker.seed = 1;
  const auto blocker_id = scheduler.submit(blocker, log.fn(), &reject);
  ASSERT_NE(blocker_id, 0u);
  // Queued while the single worker is busy: low first, high second — the
  // claim order must follow priority, not submission order.
  const auto low = scheduler.submit(quick_spec(-5), log.fn(), &reject);
  const auto mid = scheduler.submit(quick_spec(0), log.fn(), &reject);
  const auto high = scheduler.submit(quick_spec(5), log.fn(), &reject);
  ASSERT_NE(low, 0u);
  ASSERT_NE(mid, 0u);
  ASSERT_NE(high, 0u);
  release.store(true);
  log.wait_terminal(blocker_id);
  log.wait_terminal(low);
  log.wait_terminal(mid);
  log.wait_terminal(high);
  std::lock_guard<std::mutex> lock(order_mu);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{high, mid, low}));
}

TEST(ServeScheduler, RetriesWithBackoffThenSucceeds) {
  Scheduler scheduler(fast_config(), [](const JobSpec&, JobContext& ctx) {
    if (ctx.attempt < 2) throw std::runtime_error("flaky");
    return JobResult{};
  });
  EventLog log;
  std::string reject;
  JobSpec spec = quick_spec();
  spec.retries = 2;
  const auto id = scheduler.submit(spec, log.fn(), &reject);
  ASSERT_NE(id, 0u);
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kDone);
  EXPECT_EQ(log.count(id, "retry"), 2u);
  EXPECT_EQ(log.count(id, "started"), 3u);
}

TEST(ServeScheduler, ExhaustedRetriesFailWithReasonAndAttempts) {
  Scheduler scheduler(fast_config(), [](const JobSpec&, JobContext&) -> JobResult {
    throw std::runtime_error("boom");
  });
  EventLog log;
  std::string reject;
  JobSpec spec = quick_spec();
  spec.retries = 1;
  const auto id = scheduler.submit(spec, log.fn(), &reject);
  ASSERT_NE(id, 0u);
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kFailed);
  const auto reason = json_string_field(terminal.line, "reason");
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("boom"), std::string::npos);
  EXPECT_EQ(json_int_field(terminal.line, "attempts"), 2);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(ServeScheduler, JobFaultsDoNotPoisonTheWorker) {
  // One worker survives a throw and an OOM back to back, then runs a clean
  // job — per-job isolation, nothing leaks across jobs.
  Scheduler scheduler(fast_config(), [](const JobSpec& spec, JobContext&)
                                         -> JobResult {
    if (spec.seed == 1) throw std::runtime_error("thrown");
    if (spec.seed == 2) throw std::bad_alloc();
    return JobResult{};
  });
  EventLog log;
  std::string reject;
  JobSpec throws = quick_spec();
  throws.seed = 1;
  JobSpec ooms = quick_spec();
  ooms.seed = 2;
  const auto a = scheduler.submit(throws, log.fn(), &reject);
  const auto b = scheduler.submit(ooms, log.fn(), &reject);
  const auto c = scheduler.submit(quick_spec(), log.fn(), &reject);
  EXPECT_EQ(log.wait_terminal(a).state, JobState::kFailed);
  EXPECT_EQ(log.wait_terminal(b).state, JobState::kFailed);
  EXPECT_EQ(log.wait_terminal(c).state, JobState::kDone);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.done, 1u);
}

TEST(ServeScheduler, InjectedSiteFaultIsRetriedLikeAnyFailure) {
  // site:serve.job:throw fires on the first job attempt only; a retry budget
  // of 1 absorbs it. This is the FL_FAULT=site:... path the issue asks for,
  // driven through SchedulerConfig::faults.
  const auto faults = runtime::FaultInjector::parse("site:serve.job:throw");
  SchedulerConfig config = fast_config();
  config.faults = &faults;
  Scheduler scheduler(config,
                      [](const JobSpec&, JobContext&) { return JobResult{}; });
  EventLog log;
  std::string reject;
  JobSpec spec = quick_spec();
  spec.retries = 1;
  const auto id = scheduler.submit(spec, log.fn(), &reject);
  ASSERT_NE(id, 0u);
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kDone);
  EXPECT_EQ(log.count(id, "retry"), 1u);
}

TEST(ServeScheduler, BoundedQueueRejectsOverload) {
  std::atomic<bool> release{false};
  SchedulerConfig config = fast_config();
  config.max_queue = 2;
  Scheduler scheduler(config, [&](const JobSpec&, JobContext&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{};
  });
  EventLog log;
  std::string reject;
  const auto running = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(running, 0u);
  // Wait for the worker to claim it so the queue is empty again.
  while (scheduler.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto q1 = scheduler.submit(quick_spec(), log.fn(), &reject);
  const auto q2 = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(q1, 0u);
  ASSERT_NE(q2, 0u);
  const auto overflow = scheduler.submit(quick_spec(), log.fn(), &reject);
  EXPECT_EQ(overflow, 0u);
  EXPECT_EQ(reject, "overloaded");
  release.store(true);
  log.wait_terminal(running);
  log.wait_terminal(q1);
  log.wait_terminal(q2);
}

TEST(ServeScheduler, CancelQueuedJobIsImmediatelyTerminal) {
  std::atomic<bool> release{false};
  Scheduler scheduler(fast_config(), [&](const JobSpec& spec, JobContext&) {
    if (spec.seed == 1) {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return JobResult{};
  });
  EventLog log;
  std::string reject;
  JobSpec blocker = quick_spec();
  blocker.seed = 1;
  const auto blocker_id = scheduler.submit(blocker, log.fn(), &reject);
  const auto queued = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(queued, 0u);
  EXPECT_TRUE(scheduler.cancel(queued, "changed my mind"));
  const JobEvent terminal = log.wait_terminal(queued);
  EXPECT_EQ(terminal.state, JobState::kCancelled);
  EXPECT_EQ(json_string_field(terminal.line, "reason"), "changed my mind");
  EXPECT_FALSE(scheduler.cancel(queued));  // already terminal
  EXPECT_FALSE(scheduler.cancel(9999));    // unknown id
  EXPECT_EQ(log.count(queued, "started"), 0u);  // never ran
  release.store(true);
  log.wait_terminal(blocker_id);
}

TEST(ServeScheduler, CancelRunningJobViaToken) {
  Scheduler scheduler(fast_config(), [](const JobSpec&, JobContext& ctx) {
    while (!ctx.cancel->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    JobResult result;
    result.interrupted = true;  // observed the token, checkpoint intact
    return result;
  });
  EventLog log;
  std::string reject;
  const auto id = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(id, 0u);
  while (scheduler.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.cancel(id));
  const JobEvent terminal = log.wait_terminal(id);
  // An explicit user cancel is "cancelled" even when the runner cooperated.
  EXPECT_EQ(terminal.state, JobState::kCancelled);
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
}

TEST(ServeScheduler, WallBudgetTimesOutAsFailed) {
  SchedulerConfig config = fast_config();
  Scheduler scheduler(config, [](const JobSpec&, JobContext& ctx) {
    while (!ctx.cancel->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    JobResult result;
    result.interrupted = true;
    return result;
  });
  EventLog log;
  std::string reject;
  JobSpec spec = quick_spec();
  spec.timeout_s = 0.05;
  const auto id = scheduler.submit(spec, log.fn(), &reject);
  ASSERT_NE(id, 0u);
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kFailed);
  const auto reason = json_string_field(terminal.line, "reason");
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("wall budget"), std::string::npos);
}

TEST(ServeScheduler, WatchdogEscalatesStalledCancellation) {
  // The runner ignores its token for a while; the watchdog must emit the
  // stalled-failed terminal after stall_grace_s without waiting for the
  // runaway to return, and the eventual return must not emit a second one.
  std::atomic<bool> runner_returned{false};
  SchedulerConfig config = fast_config();
  config.stall_grace_s = 0.05;
  Scheduler scheduler(config, [&](const JobSpec&, JobContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    runner_returned.store(true);
    return JobResult{};  // discarded: the job is already terminal
  });
  EventLog log;
  std::string reject;
  const auto id = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(id, 0u);
  while (scheduler.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.cancel(id));
  const JobEvent terminal = log.wait_terminal(id);
  EXPECT_EQ(terminal.state, JobState::kFailed);
  const auto reason = json_string_field(terminal.line, "reason");
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("stalled"), std::string::npos);
  // Terminal arrived while the runner was still stuck.
  EXPECT_FALSE(runner_returned.load());
  // The runaway eventually returns; its discarded result must not emit a
  // second terminal.
  while (!runner_returned.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scheduler.wait_idle();
  EXPECT_EQ(log.count(id, "terminal"), 1u);  // exactly once
}

TEST(ServeScheduler, DrainInterruptsQueuedAndRunningJobs) {
  Scheduler* raw = nullptr;
  std::atomic<bool> release{false};
  Scheduler scheduler(fast_config(), [&](const JobSpec& spec, JobContext& ctx) {
    if (spec.seed == 1) {
      while (!ctx.cancel->cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      JobResult result;
      result.interrupted = true;
      return result;
    }
    (void)release;
    return JobResult{};
  });
  raw = &scheduler;
  (void)raw;
  EventLog log;
  std::string reject;
  JobSpec running = quick_spec();
  running.seed = 1;
  const auto running_id = scheduler.submit(running, log.fn(), &reject);
  ASSERT_NE(running_id, 0u);
  while (scheduler.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto queued_id = scheduler.submit(quick_spec(), log.fn(), &reject);
  ASSERT_NE(queued_id, 0u);
  scheduler.drain();
  EXPECT_EQ(log.wait_terminal(running_id).state, JobState::kInterrupted);
  EXPECT_EQ(log.wait_terminal(queued_id).state, JobState::kInterrupted);
  // Post-drain admissions bounce with the "draining" reason.
  const auto late = scheduler.submit(quick_spec(), log.fn(), &reject);
  EXPECT_EQ(late, 0u);
  EXPECT_EQ(reject, "draining");
  EXPECT_EQ(scheduler.stats().interrupted, 2u);
}

// ---------------------------------------------------------------------------
// parse_serve_args

ServeArgs parse_args(std::vector<std::string> args) {
  std::vector<char*> argv;
  std::string argv0 = "fulllock";
  std::string argv1 = "serve";
  argv.push_back(argv0.data());
  argv.push_back(argv1.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  return parse_serve_args(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(ServeArgsParse, ParsesEveryKnob) {
  const ServeArgs args =
      parse_args({"/tmp/fl.sock", "--state", "/tmp/fl.journal", "--workers",
                  "4", "--max-queue", "32", "--job-timeout", "90",
                  "--retries", "2", "--backoff", "0.5", "--stall-grace", "5"});
  EXPECT_EQ(args.socket_path, "/tmp/fl.sock");
  EXPECT_EQ(args.journal_path, "/tmp/fl.journal");
  EXPECT_EQ(args.workers, 4);
  EXPECT_EQ(args.max_queue, 32u);
  EXPECT_DOUBLE_EQ(args.job_timeout_s, 90.0);
  EXPECT_EQ(args.retries, 2);
  EXPECT_DOUBLE_EQ(args.backoff_s, 0.5);
  EXPECT_DOUBLE_EQ(args.stall_grace_s, 5.0);
}

TEST(ServeArgsParse, RejectsJunkStrictly) {
  EXPECT_THROW(parse_args({}), std::invalid_argument);  // no socket path
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--workers", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--workers", "abc"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--max-queue", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--retries", "-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--job-timeout", "-3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--job-timeout", "nan"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--stall-grace", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--bogus"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"/tmp/fl.sock", "--workers"}),  // missing value
               std::invalid_argument);
}

}  // namespace
}  // namespace fl::serve
