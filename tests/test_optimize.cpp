// Netlist optimization: identities, hashing, equivalence preservation, and
// the resynthesis-resistance property of locked circuits.
#include <gtest/gtest.h>

#include <random>

#include "cnf/miter.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/generator.h"
#include "netlist/optimize.h"
#include "netlist/profiles.h"
#include "netlist/simulator.h"

namespace fl::netlist {
namespace {

TEST(Optimize, ConstantPropagation) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId c1 = n.add_const(true);
  const GateId c0 = n.add_const(false);
  const GateId g1 = n.add_gate(GateType::kAnd, {a, c1});       // = a
  const GateId g2 = n.add_gate(GateType::kOr, {g1, c0});       // = a
  const GateId g3 = n.add_gate(GateType::kXor, {g2, c1});      // = ~a
  const GateId g4 = n.add_gate(GateType::kMux, {c1, a, g3});   // = ~a
  n.mark_output(g4, "y");
  OptimizeStats stats;
  const Netlist opt = optimize(n, &stats);
  // Whole cone folds to a single inverter.
  EXPECT_EQ(opt.num_logic_gates(), 1u);
  EXPECT_GT(stats.constants_folded, 0u);
  EXPECT_TRUE(cnf::check_equivalence(n, {}, opt, {}));
}

TEST(Optimize, AlgebraicIdentities) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId na = n.add_gate(GateType::kNot, {a});
  const GateId g1 = n.add_gate(GateType::kAnd, {a, na});   // = 0
  const GateId g2 = n.add_gate(GateType::kXor, {b, b});    // = 0
  const GateId g3 = n.add_gate(GateType::kOr, {g1, g2});   // = 0
  const GateId g4 = n.add_gate(GateType::kOr, {g3, a});    // = a
  n.mark_output(g4, "y");
  const Netlist opt = optimize(n);
  EXPECT_EQ(opt.num_logic_gates(), 0u);  // output is just input a
  EXPECT_TRUE(cnf::check_equivalence(n, {}, opt, {}));
}

TEST(Optimize, DoubleNegationAndBufferSweep) {
  Netlist n;
  const GateId a = n.add_input("a");
  GateId cur = a;
  for (int i = 0; i < 6; ++i) cur = n.add_gate(GateType::kNot, {cur});
  cur = n.add_gate(GateType::kBuf, {cur});
  n.mark_output(cur, "y");  // even # of NOTs + BUF == identity
  const Netlist opt = optimize(n);
  EXPECT_EQ(opt.num_logic_gates(), 0u);
}

TEST(Optimize, StructuralHashingMergesDuplicates) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, b});
  const GateId g2 = n.add_gate(GateType::kAnd, {b, a});  // commuted dup
  const GateId g3 = n.add_gate(GateType::kXor, {g1, g2});  // = 0
  const GateId g4 = n.add_gate(GateType::kOr, {g3, g1});
  n.mark_output(g4, "y");
  OptimizeStats stats;
  const Netlist opt = optimize(n, &stats);
  EXPECT_GT(stats.subexpressions_merged + stats.identities_applied, 0u);
  EXPECT_EQ(opt.num_logic_gates(), 1u);  // just AND(a, b)
  EXPECT_TRUE(cnf::check_equivalence(n, {}, opt, {}));
}

TEST(Optimize, MuxIdentities) {
  Netlist n;
  const GateId s = n.add_input("s");
  const GateId a = n.add_input("a");
  const GateId na = n.add_gate(GateType::kNot, {a});
  const GateId m1 = n.add_gate(GateType::kMux, {s, a, a});    // = a
  const GateId m2 = n.add_gate(GateType::kMux, {s, a, na});   // = s ^ ~a...
  const GateId g = n.add_gate(GateType::kAnd, {m1, m2});
  n.mark_output(g, "y");
  const Netlist opt = optimize(n);
  EXPECT_TRUE(cnf::check_equivalence(n, {}, opt, {}));
  EXPECT_LT(opt.num_logic_gates(), n.num_logic_gates());
}

TEST(Optimize, RandomCircuitsStayEquivalent) {
  std::mt19937_64 seeds(61);
  for (int trial = 0; trial < 8; ++trial) {
    GeneratorConfig config;
    config.num_inputs = 10;
    config.num_outputs = 6;
    config.num_gates = 150;
    config.seed = seeds();
    const Netlist n = generate_circuit(config);
    OptimizeStats stats;
    const Netlist opt = optimize(n, &stats);
    ASSERT_TRUE(cnf::check_equivalence(n, {}, opt, {})) << "trial " << trial;
    EXPECT_LE(stats.gates_after, stats.gates_before);
  }
}

TEST(Optimize, PreservesKeyInterface) {
  const Netlist original = make_circuit("c432", 71);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const Netlist opt = optimize(locked.netlist);
  ASSERT_EQ(opt.num_keys(), locked.netlist.num_keys());
  // Same keys, same order, same function under the correct key.
  EXPECT_TRUE(core::verify_unlocks(original, opt, locked.correct_key, 16, 1,
                                   /*sat=*/true));
}

// The resynthesis-attack angle: optimizing a locked netlist (without the
// key) must not strip the key dependence — wrong keys still corrupt.
TEST(Optimize, ResynthesisDoesNotUnlock) {
  const Netlist original = make_circuit("c880", 72);
  const core::LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({16}));
  const Netlist opt = optimize(locked.netlist);
  core::LockedCircuit relocked;
  relocked.netlist = opt;
  relocked.correct_key = locked.correct_key;
  relocked.scheme = locked.scheme;
  const core::CorruptionStats corruption =
      core::output_corruption(original, relocked, 16, 4, 7);
  EXPECT_GT(corruption.mean_error_rate, 0.05);
}

TEST(Optimize, RejectsCyclic) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g = n.add_gate(GateType::kOr, {a, a});
  n.set_fanin(g, {a, g});
  n.mark_output(g);
  EXPECT_THROW(optimize(n), std::invalid_argument);
}

}  // namespace
}  // namespace fl::netlist
