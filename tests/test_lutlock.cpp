// LUT-Lock-specific claims: site selection and corruption magnitude.
// Generic lock invariants run for every registry scheme in
// test_lock_properties.cpp.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "locking/lutlock.h"
#include "netlist/profiles.h"

namespace fl::lock {
namespace {

using netlist::Netlist;

TEST(LutLock, PreferSmallPicksCheapGates) {
  const Netlist original = netlist::make_circuit("c880", 73);
  LutLockConfig small;
  small.num_luts = 10;
  small.prefer_small = true;
  LutLockConfig any;
  any.num_luts = 10;
  any.prefer_small = false;
  const auto k_small = lutlock_lock(original, small).key_bits();
  const auto k_any = lutlock_lock(original, any).key_bits();
  EXPECT_LE(k_small, k_any);
}

TEST(LutLock, OnlyLiveGatesAreKeyed) {
  // One live gate, one dead gate. The single LUT must land on the live one:
  // a key on dead logic provably never affects the function.
  Netlist original;
  const auto a = original.add_input("a");
  const auto b = original.add_input("b");
  original.mark_output(
      original.add_gate(netlist::GateType::kAnd, {a, b}), "y");
  original.add_gate(netlist::GateType::kOr, {a, b});  // dead
  LutLockConfig config;
  config.num_luts = 1;
  const core::LockedCircuit locked = lutlock_lock(original, config);
  std::vector<bool> wrong = locked.correct_key;
  wrong.flip();
  EXPECT_FALSE(core::verify_unlocks(original, locked.netlist, wrong, 8, 1,
                                    /*sat=*/true));
}

TEST(LutLock, TooManyLutsThrows) {
  const Netlist c17 = netlist::make_c17();
  LutLockConfig config;
  config.num_luts = 100;
  EXPECT_THROW(lutlock_lock(c17, config), std::invalid_argument);
}

TEST(LutLock, HighCorruption) {
  // Unlike point functions, LUT-Lock corrupts broadly (each wrong table bit
  // flips a whole input subspace).
  const Netlist original = netlist::make_circuit("c432", 74);
  LutLockConfig config;
  config.num_luts = 16;
  const core::LockedCircuit locked = lutlock_lock(original, config);
  const core::CorruptionStats stats =
      core::output_corruption(original, locked, 16, 4, 3);
  EXPECT_GT(stats.mean_error_rate, 0.01);
}

}  // namespace
}  // namespace fl::lock
