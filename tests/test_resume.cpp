// Crash/resume integration: a sweep killed mid-run (hard process death via
// fault injection, simulating an OOM-kill) must leave a durable JSONL file
// that a --resume run completes to the exact byte stream an uninterrupted
// run produces — no duplicate cells, no holes, no extra marker lines.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "runtime/fault.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"

namespace fl::runtime {
namespace {

constexpr std::size_t kCells = 6;
constexpr std::uint64_t kBaseSeed = 42;

// A miniature sweep in the exact shape of the bench drivers: SweepSession
// around run_grid, one record per cell with only deterministic fields (so
// files from two runs compare byte-for-byte).
int run_mini_sweep(RunnerArgs args, const FaultInjector* faults) {
  args.jobs = 1;  // serial: the byte-identical reference discipline
  SweepSessionOptions options;
  options.faults = faults;  // reaches both the grid and the durable writer
  SweepSession session("mini", kCells, kBaseSeed, args, options);
  const auto record_base = [&](std::size_t i) {
    JsonObject o;
    o.field("cell", i)
        .field("bench", "mini")
        .field("seed", derive_seed(kBaseSeed, {static_cast<std::uint64_t>(i)}));
    return o;
  };
  const GridReport report =
      run_grid(kCells, session.grid_config(), [&](const CellContext& ctx) {
        JsonObject o = record_base(ctx.index);
        o.field("value",
                derive_seed(7, {static_cast<std::uint64_t>(ctx.index)}));
        session.sink()->write(ctx.index, o.str());
      });
  return session.finish(report, record_base);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Resume, KilledSweepResumesByteIdentical) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "fork-based crash test requires a unix target";
#else
  const std::string full_path = ::testing::TempDir() + "/fl_full.jsonl";
  const std::string crash_path = ::testing::TempDir() + "/fl_crash.jsonl";
  std::remove(full_path.c_str());
  std::remove(crash_path.c_str());

  // Reference: the uninterrupted serial run.
  RunnerArgs full_args;
  full_args.jsonl_path = full_path;
  ASSERT_EQ(run_mini_sweep(full_args, nullptr), 0);

  // Crash run in a child process: cell 3 dies with std::_Exit(137), the
  // way the kernel OOM-killer would take the process out — no unwinding,
  // no destructor flush.
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    FaultInjector faults;
    faults.add(FaultSpec::at_cell(3, FaultKind::kExit, /*count=*/99));
    RunnerArgs crash_args;
    crash_args.jsonl_path = crash_path;
    run_mini_sweep(crash_args, &faults);
    std::_Exit(0);  // unreachable unless the fault failed to fire
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);

  // The partial file survived the kill: manifest header + cells 0..2, all
  // fsynced before cell 3 ran.
  const std::vector<std::string> partial = lines_of(slurp(crash_path));
  ASSERT_EQ(partial.size(), 4u);
  EXPECT_EQ(json_string_field(partial[0], "record"), "run_header");
  for (std::size_t i = 1; i < partial.size(); ++i) {
    EXPECT_EQ(json_int_field(partial[i], "cell"),
              static_cast<long long>(i - 1));
  }

  // Resume: skips the completed cells, re-runs 3..5, appends nothing else.
  RunnerArgs resume_args;
  resume_args.jsonl_path = crash_path;
  resume_args.resume = true;
  ASSERT_EQ(run_mini_sweep(resume_args, nullptr), 0);

  // Byte-identical to the uninterrupted run: same header, every cell
  // exactly once, in order, no duplicates, no resume markers.
  EXPECT_EQ(slurp(crash_path), slurp(full_path));

  std::remove(full_path.c_str());
  std::remove(crash_path.c_str());
#endif
}

TEST(Resume, FailedCellsAreTerminalNotHoles) {
  const std::string path = ::testing::TempDir() + "/fl_failed.jsonl";
  std::remove(path.c_str());

  // Cell 2 fails on every attempt despite one retry: the sweep finishes
  // with a structured failure record and a nonzero exit code.
  FaultInjector faults;
  faults.add(FaultSpec::at_cell(2, FaultKind::kThrow, /*count=*/99));
  RunnerArgs args;
  args.jsonl_path = path;
  args.retries = 1;
  EXPECT_EQ(run_mini_sweep(args, &faults), 1);

  const std::vector<std::string> lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), kCells + 1);  // header + one record per cell
  bool found_failure = false;
  for (const std::string& line : lines) {
    if (json_int_field(line, "cell") != 2) continue;
    found_failure = true;
    EXPECT_EQ(json_string_field(line, "status"), "failed");
    EXPECT_EQ(json_int_field(line, "attempt"), 2);
    const auto reason = json_string_field(line, "reason");
    ASSERT_TRUE(reason.has_value());
    EXPECT_NE(reason->find("fault-injected"), std::string::npos);
  }
  EXPECT_TRUE(found_failure);

  // A failure record is a terminal outcome: --resume does not re-run the
  // cell (rerunning would duplicate its record) and the file is unchanged.
  const std::string before = slurp(path);
  RunnerArgs resume_args;
  resume_args.jsonl_path = path;
  resume_args.resume = true;
  EXPECT_EQ(run_mini_sweep(resume_args, &faults), 0);
  EXPECT_EQ(slurp(path), before);

  std::remove(path.c_str());
}

TEST(Resume, CheckpointWriteFaultForcesNonzeroExitThenResumes) {
  const std::string full_path = ::testing::TempDir() + "/fl_ws_full.jsonl";
  const std::string path = ::testing::TempDir() + "/fl_ws_enospc.jsonl";
  std::remove(full_path.c_str());
  std::remove(path.c_str());

  RunnerArgs full_args;
  full_args.jsonl_path = full_path;
  ASSERT_EQ(run_mini_sweep(full_args, nullptr), 0);

  // The disk fills right after the manifest header commits: every later
  // sync fails with (injected) ENOSPC. No cell record becomes durable, and
  // the sweep must not exit 0 — results that never reached disk are not
  // results.
  FaultInjector faults;
  faults.add(FaultSpec::at_write(
      static_cast<std::size_t>(JsonlWriter::sync_sequence()) + 1,
      FaultKind::kEWrite, /*count=*/1 << 20));
  RunnerArgs args;
  args.jsonl_path = path;
  ::testing::internal::CaptureStderr();
  EXPECT_NE(run_mini_sweep(args, &faults), 0);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("fault-injected"), std::string::npos) << err;

  // The file holds the fsynced header plus at most the one record that was
  // already in the stream buffer when the disk filled (it lands at close;
  // a complete record is resumable-from). The poisoned stream let nothing
  // after it through — in particular none of the failure records, which
  // would otherwise sit next to the value records they contradict.
  const std::vector<std::string> partial = lines_of(slurp(path));
  ASSERT_LE(partial.size(), 2u);
  ASSERT_GE(partial.size(), 1u);
  EXPECT_EQ(json_string_field(partial[0], "record"), "run_header");
  for (const std::string& line : partial) {
    EXPECT_EQ(line.find("\"status\":\"failed\""), std::string::npos) << line;
  }

  // Disk space frees up: --resume re-runs everything that never committed
  // and converges to the exact byte stream of an undisturbed run.
  RunnerArgs resume_args;
  resume_args.jsonl_path = path;
  resume_args.resume = true;
  EXPECT_EQ(run_mini_sweep(resume_args, nullptr), 0);
  EXPECT_EQ(slurp(path), slurp(full_path));

  std::remove(full_path.c_str());
  std::remove(path.c_str());
}

TEST(Resume, ManifestMismatchRefusesToResume) {
  const std::string path = ::testing::TempDir() + "/fl_mismatch.jsonl";
  std::remove(path.c_str());
  RunnerArgs args;
  args.jsonl_path = path;
  ASSERT_EQ(run_mini_sweep(args, nullptr), 0);

  // A sweep with a different grid must not append onto this file.
  RunnerArgs other;
  other.jsonl_path = path;
  other.resume = true;
  other.jobs = 1;
  EXPECT_THROW(SweepSession("other-bench", kCells, kBaseSeed, other),
               std::runtime_error);
  EXPECT_THROW(SweepSession("mini", kCells + 1, kBaseSeed, other),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fl::runtime
