// Key-sensitization attack: breaks RLL, blunted by Full-Lock.
#include <gtest/gtest.h>

#include "attacks/oracle.h"
#include "attacks/sensitization.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "locking/rll.h"
#include "netlist/profiles.h"

namespace fl::attacks {
namespace {

using core::LockedCircuit;
using netlist::Netlist;

TEST(Sensitization, RecoversMostRllKeysCorrectly) {
  const Netlist original = netlist::make_circuit("c880", 161);
  lock::RllConfig config;
  config.num_keys = 24;
  const LockedCircuit locked = lock::rll_lock(original, config);
  const Oracle oracle(original);
  const SensitizationResult result = sensitization_attack(locked, oracle);
  // RLL leaves most key gates individually observable.
  EXPECT_GE(result.num_resolved, 12);
  // And every recovered bit must be RIGHT (goldenness is a proof).
  for (std::size_t i = 0; i < result.resolved.size(); ++i) {
    if (result.resolved[i] < 0) continue;
    EXPECT_EQ(result.resolved[i] == 1, locked.correct_key[i] == true)
        << "key bit " << i;
  }
  // Oracle traffic is ~1 query per resolved bit, far below 2^k.
  EXPECT_LE(result.oracle_queries,
            static_cast<std::uint64_t>(result.num_resolved));
}

TEST(Sensitization, FullLockLeavesKeysEntangled) {
  const Netlist original = netlist::make_circuit("c880", 162);
  const LockedCircuit locked =
      core::full_lock(original, core::FullLockConfig::with_plrs({8}));
  const Oracle oracle(original);
  SensitizationOptions options;
  options.attempts_per_key = 3;
  options.timeout_s = 60.0;
  const SensitizationResult result =
      sensitization_attack(locked, oracle, options);
  // The CLN entangles keys: only a negligible fraction can be golden.
  EXPECT_LT(result.num_resolved,
            static_cast<int>(locked.key_bits()) / 8);
  // Whatever *is* resolved must still be correct (soundness).
  for (std::size_t i = 0; i < result.resolved.size(); ++i) {
    if (result.resolved[i] < 0) continue;
    EXPECT_EQ(result.resolved[i] == 1, locked.correct_key[i] == true);
  }
}

TEST(Sensitization, KeylessCircuit) {
  const Netlist c17 = netlist::make_c17();
  LockedCircuit unlocked;
  unlocked.netlist = c17;
  unlocked.scheme = "none";
  const Oracle oracle(c17);
  const SensitizationResult result = sensitization_attack(unlocked, oracle);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.num_resolved, 0);
  EXPECT_EQ(result.oracle_queries, 0u);
}

}  // namespace
}  // namespace fl::attacks
