// Ablation bench (DESIGN.md §5): which Full-Lock ingredients buy the SAT
// hardness? One 16x16 PLR on c880, toggling one design choice at a time.
//
// Expected shape: LUT twisting is the largest single multiplier; shared
// SwB selects (half the key bits, permutation-only configs) measurably
// soften the instance; the inverter layer is cheap but contributes; the
// blocking topology collapses hardness at equal N.
#include <benchmark/benchmark.h>

#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "netlist/profiles.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::ClnTopology;

struct Variant {
  const char* label;
  ClnTopology topology = ClnTopology::kBanyanNonBlocking;
  bool independent_selects = true;
  bool with_inverters = true;
  bool twist_luts = true;
  bool decompose_host = false;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v = {
      {"full (baseline)"},
      {"blocking topology", ClnTopology::kShuffleBlocking},
      {"shared SwB selects", ClnTopology::kBanyanNonBlocking, false},
      {"no inverter layer", ClnTopology::kBanyanNonBlocking, true, false},
      {"no LUT twisting", ClnTopology::kBanyanNonBlocking, true, true, false},
      {"2-input host", ClnTopology::kBanyanNonBlocking, true, true, true,
       true},
  };
  return v;
}

struct Cell {
  double seconds = 0.0;
  bool timed_out = false;
  std::uint64_t decisions = 0;
  std::size_t key_bits = 0;
};
std::vector<Cell> g_cells;

void run_variant(benchmark::State& state) {
  const Variant& variant = variants()[state.range(0)];
  Cell cell;
  for (auto _ : state) {
    const fl::netlist::Netlist original =
        fl::netlist::make_circuit("c880", 17);
    fl::core::FullLockConfig config;
    fl::core::PlrConfig plr;
    plr.cln.n = fl::bench::quick_mode() ? 8 : 16;
    plr.cln.topology = variant.topology;
    plr.cln.independent_selects = variant.independent_selects;
    plr.cln.with_inverters = variant.with_inverters;
    plr.twist_luts = variant.twist_luts;
    plr.negate_probability = variant.with_inverters ? 0.5 : 0.0;
    config.plrs = {plr};
    config.decompose_two_input = variant.decompose_host;
    config.seed = 23;
    const fl::core::LockedCircuit locked =
        fl::core::full_lock(original, config);
    cell.key_bits = locked.key_bits();
    const fl::attacks::Oracle oracle(original);
    fl::attacks::AttackOptions options;
    options.timeout_s = fl::bench::attack_timeout_s();
    const fl::attacks::AttackResult result =
        fl::attacks::SatAttack(options).run(locked, oracle);
    cell.seconds = result.seconds;
    cell.timed_out = result.status == fl::attacks::AttackStatus::kTimeout;
    cell.decisions = result.solver_stats.decisions;
  }
  state.counters["timed_out"] = cell.timed_out ? 1 : 0;
  state.counters["decisions"] = static_cast<double>(cell.decisions);
  g_cells[state.range(0)] = cell;
}

void print_table() {
  TablePrinter table("Ablation — SAT attack vs Full-Lock design choices "
                     "(1 PLR on c880, TO = " +
                     std::to_string(fl::bench::attack_timeout_s()) + " s)");
  table.row({"variant", "key_bits", "attack_s", "solver_decisions"}, 22);
  for (std::size_t i = 0; i < variants().size(); ++i) {
    table.row({variants()[i].label, std::to_string(g_cells[i].key_bits),
               fl::bench::fmt_time_or_to(g_cells[i].timed_out,
                                         g_cells[i].seconds),
               std::to_string(g_cells[i].decisions)},
              22);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  g_cells.resize(variants().size());
  for (std::size_t i = 0; i < variants().size(); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/") + variants()[i].label).c_str(), run_variant)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
