// Table 5: smallest SAT-resilient locking configuration per benchmark —
// Full-Lock PLRs vs Cross-Lock 32x36 crossbars.
//
// For each circuit, both schemes escalate through a configuration ladder
// until the attack times out at the scaled budget; the first resilient
// rung is reported. Expected shape: Full-Lock reaches resilience with
// fewer/smaller blocks than Cross-Lock (paper: e.g. apex4 needs
// 2x32x32 + 1x8x8 PLRs vs 11 32x36 crossbars).
#include <benchmark/benchmark.h>

#include <map>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "locking/crosslock.h"
#include "netlist/profiles.h"

namespace {

using fl::bench::TablePrinter;

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  return {"c432", "c499", "c880", "apex2", "i4"};
}

// Full-Lock escalation ladder (paper configurations are sums of 8/16/32
// CLNs; the rungs below walk upward in total key material).
const std::vector<std::vector<int>>& fulllock_ladder() {
  static const std::vector<std::vector<int>> ladder = {
      {8}, {16}, {16, 8}, {16, 16}, {16, 16, 8}, {32}, {32, 16}, {32, 32}};
  return ladder;
}
constexpr int kMaxCrossbars = 6;

struct SchemeResult {
  std::string config;  // first resilient rung, or "broken thru <max>"
  bool found = false;
  double attack_seconds_at_break = 0.0;  // time of last breakable rung
};
std::map<std::string, SchemeResult> g_fulllock;
std::map<std::string, SchemeResult> g_crosslock;

std::string ladder_label(const std::vector<int>& sizes) {
  std::map<int, int> counts;
  for (const int s : sizes) counts[s]++;
  std::string label;
  for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
    if (!label.empty()) label += " + ";
    label += std::to_string(it->second) + "x" + std::to_string(it->first) +
             "x" + std::to_string(it->first);
  }
  return label;
}

bool attack_times_out(const fl::netlist::Netlist& original,
                      const fl::core::LockedCircuit& locked, double* seconds) {
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = fl::bench::attack_timeout_s();
  const fl::attacks::AttackResult result =
      fl::attacks::SatAttack(options).run(locked, oracle);
  *seconds = result.seconds;
  return result.status == fl::attacks::AttackStatus::kTimeout;
}

void run_fulllock(benchmark::State& state) {
  const std::string circuit = circuits()[state.range(0)];
  SchemeResult score;
  score.config = "broken thru " + ladder_label(fulllock_ladder().back());
  for (auto _ : state) {
    const fl::netlist::Netlist original = fl::netlist::make_circuit(circuit, 1);
    for (const std::vector<int>& sizes : fulllock_ladder()) {
      fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
          sizes, fl::core::ClnTopology::kBanyanNonBlocking,
          fl::core::CycleMode::kAvoid, true, 0.5);
      config.seed = 5;
      fl::core::LockedCircuit locked;
      try {
        locked = fl::core::full_lock(original, config);
      } catch (const std::invalid_argument&) {
        continue;  // circuit too small for this rung
      }
      double seconds = 0.0;
      if (attack_times_out(original, locked, &seconds)) {
        score.config = ladder_label(sizes);
        score.found = true;
        break;
      }
      score.attack_seconds_at_break = seconds;
    }
  }
  state.counters["resilient"] = score.found ? 1 : 0;
  g_fulllock[circuit] = score;
}

void run_crosslock(benchmark::State& state) {
  const std::string circuit = circuits()[state.range(0)];
  SchemeResult score;
  score.config = "broken thru " + std::to_string(kMaxCrossbars) + "x32x36";
  for (auto _ : state) {
    const fl::netlist::Netlist original = fl::netlist::make_circuit(circuit, 1);
    for (int k = 1; k <= kMaxCrossbars; ++k) {
      fl::core::LockedCircuit locked;
      try {
        fl::netlist::Netlist working = original;
        // k crossbars: apply the transform k times with distinct seeds.
        fl::core::LockedCircuit acc;
        acc.netlist = original;
        acc.scheme = "cross-lock";
        for (int i = 0; i < k; ++i) {
          fl::lock::CrossLockConfig config;
          config.num_sources = 32;
          config.num_destinations = 36;
          config.seed = 100 + i;
          const fl::core::LockedCircuit step =
              fl::lock::crosslock_lock(acc.netlist, config);
          acc.netlist = step.netlist;
          acc.correct_key.insert(acc.correct_key.end(),
                                 step.correct_key.begin(),
                                 step.correct_key.end());
        }
        locked = std::move(acc);
      } catch (const std::invalid_argument&) {
        continue;
      }
      double seconds = 0.0;
      if (attack_times_out(original, locked, &seconds)) {
        score.config = std::to_string(k) + "x32x36";
        score.found = true;
        break;
      }
      score.attack_seconds_at_break = seconds;
    }
  }
  state.counters["resilient"] = score.found ? 1 : 0;
  g_crosslock[circuit] = score;
}

void print_table() {
  TablePrinter table("Table 5 — smallest SAT-resilient configuration "
                     "(TO = " + std::to_string(fl::bench::attack_timeout_s()) +
                     " s)");
  table.row({"circuit", "gates", "Full-Lock", "Cross-Lock"}, 20);
  for (const std::string& c : circuits()) {
    const auto profile = fl::netlist::find_profile(c);
    table.row({c, std::to_string(profile->num_gates), g_fulllock[c].config,
               g_crosslock[c].config},
              20);
  }
  std::printf("(paper shape: Full-Lock reaches SAT resilience with smaller/"
              "fewer blocks than Cross-Lock on every circuit)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const auto names = circuits();
  for (std::size_t ci = 0; ci < names.size(); ++ci) {
    benchmark::RegisterBenchmark(("table5/fulllock/" + names[ci]).c_str(),
                                 run_fulllock)
        ->Arg(static_cast<int>(ci))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("table5/crosslock/" + names[ci]).c_str(),
                                 run_crosslock)
        ->Arg(static_cast<int>(ci))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
