// Table 5: smallest SAT-resilient locking configuration per benchmark.
//
// Every scheme is a registry entry (locking/scheme.h) with a configuration
// ladder: for each circuit the scheme escalates rung by rung until the
// attack times out at the scaled budget, and the first resilient rung is
// reported. The seed grid covers Full-Lock PLRs vs Cross-Lock 32x36
// crossbars (the paper's comparison) plus InterLock and SFLL-HD ladders.
// Expected shape: Full-Lock/InterLock reach resilience with fewer/smaller
// blocks than Cross-Lock (paper: e.g. apex4 needs 2x32x32 + 1x8x8 PLRs vs
// 11 32x36 crossbars); SFLL-HD resists the plain SAT attack at small key
// widths by construction (point function) but falls to FALL.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "locking/scheme.h"
#include "netlist/profiles.h"
#include "runtime/seed.h"

namespace {

using fl::bench::TablePrinter;

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  return {"c432", "c499", "c880", "apex2", "i4"};
}

// One escalation rung: lock `repeat` times (accumulating key bits) with the
// given sizes/params. repeat > 1 models stacked Cross-Lock crossbars.
struct Rung {
  std::string label;
  int repeat = 1;
  std::vector<int> sizes;
  std::string params;
};

struct SchemeLadder {
  std::string display;  // table column
  std::string name;     // registry scheme name
  std::vector<Rung> rungs;
};

std::string ladder_label(const std::vector<int>& sizes) {
  std::map<int, int> counts;
  for (const int s : sizes) counts[s]++;
  std::string label;
  for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
    if (!label.empty()) label += " + ";
    label += std::to_string(it->second) + "x" + std::to_string(it->first) +
             "x" + std::to_string(it->first);
  }
  return label;
}

// Routing ladders walk upward in total key material (paper configurations
// are sums of 8/16/32 CLNs).
std::vector<Rung> routing_rungs() {
  std::vector<Rung> rungs;
  for (const std::vector<int>& sizes :
       {std::vector<int>{8}, {16}, {16, 8}, {16, 16}, {16, 16, 8}, {32},
        {32, 16}, {32, 32}}) {
    rungs.push_back({ladder_label(sizes), 1, sizes, ""});
  }
  return rungs;
}

const std::vector<SchemeLadder>& ladders() {
  static const std::vector<SchemeLadder> all = [] {
    std::vector<SchemeLadder> l;
    l.push_back({"Full-Lock", "full-lock", routing_rungs()});
    l.push_back({"InterLock", "interlock", routing_rungs()});
    SchemeLadder cross{"Cross-Lock", "cross-lock", {}};
    for (int k = 1; k <= 6; ++k) {
      // k stacked 32x36 crossbars, applied with distinct sub-seeds.
      cross.rungs.push_back({std::to_string(k) + "x32x36", k, {}, ""});
    }
    l.push_back(std::move(cross));
    SchemeLadder sfll{"SFLL-HD", "sfll-hd", {}};
    for (const char* p : {"keys=8,hd=1", "keys=12,hd=2", "keys=16,hd=2",
                          "keys=16,hd=4"}) {
      sfll.rungs.push_back({p, 1, {}, p});
    }
    l.push_back(std::move(sfll));
    return l;
  }();
  return all;
}

struct SchemeResult {
  std::string config;  // first resilient rung, or "broken thru <max>"
  bool found = false;
  double attack_seconds_at_break = 0.0;  // time of last breakable rung
};
// results[ladder display][circuit]
std::map<std::string, std::map<std::string, SchemeResult>> g_results;

bool attack_times_out(const fl::netlist::Netlist& original,
                      const fl::core::LockedCircuit& locked, double* seconds) {
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = fl::bench::attack_timeout_s();
  const fl::attacks::AttackResult result =
      fl::attacks::SatAttack(options).run(locked, oracle);
  *seconds = result.seconds;
  return result.status == fl::attacks::AttackStatus::kTimeout;
}

// Applies the rung: `repeat` registry locks stacked on one another, key
// material concatenated. Throws std::invalid_argument when the circuit
// cannot host the configuration (too few disjoint wires).
fl::core::LockedCircuit lock_rung(const SchemeLadder& ladder, const Rung& rung,
                                  const fl::netlist::Netlist& original,
                                  std::uint64_t seed) {
  fl::core::LockedCircuit acc;
  acc.netlist = original;
  acc.scheme = ladder.name;
  for (int i = 0; i < rung.repeat; ++i) {
    const fl::core::LockedCircuit step = fl::lock::lock_with(
        ladder.name, acc.netlist,
        fl::lock::make_options(
            fl::runtime::derive_seed(seed, {static_cast<std::uint64_t>(i)}),
            rung.sizes, rung.params));
    acc.netlist = step.netlist;
    acc.correct_key.insert(acc.correct_key.end(), step.correct_key.begin(),
                           step.correct_key.end());
    acc.params = step.params;
  }
  return acc;
}

void run_ladder(benchmark::State& state) {
  const SchemeLadder& ladder = ladders()[state.range(0)];
  const std::string circuit = circuits()[state.range(1)];
  SchemeResult score;
  score.config = "broken thru " + ladder.rungs.back().label;
  for (auto _ : state) {
    const fl::netlist::Netlist original = fl::netlist::make_circuit(circuit, 1);
    for (const Rung& rung : ladder.rungs) {
      fl::core::LockedCircuit locked;
      try {
        locked = lock_rung(ladder, rung, original, 5);
      } catch (const std::invalid_argument&) {
        continue;  // circuit too small for this rung
      }
      double seconds = 0.0;
      if (attack_times_out(original, locked, &seconds)) {
        score.config = rung.label;
        score.found = true;
        break;
      }
      score.attack_seconds_at_break = seconds;
    }
  }
  state.counters["resilient"] = score.found ? 1 : 0;
  g_results[ladder.display][circuit] = score;
}

void print_table() {
  char title[96];
  std::snprintf(title, sizeof(title),
                "Table 5 — smallest SAT-resilient configuration (TO = %g s)",
                fl::bench::attack_timeout_s());
  TablePrinter table(title);
  std::vector<std::string> header = {"circuit", "gates"};
  for (const SchemeLadder& ladder : ladders()) header.push_back(ladder.display);
  table.row(header, 20);
  for (const std::string& c : circuits()) {
    const auto profile = fl::netlist::find_profile(c);
    std::vector<std::string> row = {c, std::to_string(profile->num_gates)};
    for (const SchemeLadder& ladder : ladders()) {
      row.push_back(g_results[ladder.display][c].config);
    }
    table.row(row, 20);
  }
  std::printf("(paper shape: Full-Lock reaches SAT resilience with smaller/"
              "fewer blocks than Cross-Lock on every circuit; SFLL-HD's "
              "point function stalls the SAT attack at tiny key widths but "
              "falls to the FALL attack instead)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const auto names = circuits();
  for (std::size_t li = 0; li < ladders().size(); ++li) {
    for (std::size_t ci = 0; ci < names.size(); ++ci) {
      benchmark::RegisterBenchmark(
          ("table5/" + ladders()[li].name + "/" + names[ci]).c_str(),
          run_ladder)
          ->Args({static_cast<long>(li), static_cast<long>(ci)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
