// Figure 5: power/delay/area of STT-based LUTs (sizes 2..8) vs 2-input CMOS
// standard cells.
//
// Expected shape: LUT sizes 2..5 sit within the standard-cell cost band
// (negligible overhead); beyond 5 all three metrics take off — which is why
// Full-Lock caps LUT fan-in at 5 (§3.2).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ppa/stt_lut.h"

namespace {

using fl::bench::TablePrinter;
using fl::ppa::GateCost;

void run_lut(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  GateCost cost;
  for (auto _ : state) {
    cost = fl::ppa::stt_lut_cost(k);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["area_um2"] = cost.area_um2;
  state.counters["power_nw"] = cost.power_nw;
  state.counters["delay_ns"] = cost.delay_ns;
}

void print_table() {
  TablePrinter table("Fig. 5 — STT-LUT vs CMOS standard cells");
  table.row({"cell", "area_um2", "power_nW", "delay_ns", "area_ovh", "delay_ovh"},
            14);
  const auto emit_gate = [&](const char* label, fl::netlist::GateType type) {
    const GateCost c = fl::ppa::base_cell_cost(type);
    char area[32], power[32], delay[32];
    std::snprintf(area, sizeof(area), "%.2f", c.area_um2);
    std::snprintf(power, sizeof(power), "%.1f", c.power_nw);
    std::snprintf(delay, sizeof(delay), "%.3f", c.delay_ns);
    table.row({label, area, power, delay, "-", "-"}, 14);
  };
  emit_gate("NAND2 (CMOS)", fl::netlist::GateType::kNand);
  emit_gate("XOR2 (CMOS)", fl::netlist::GateType::kXor);
  emit_gate("MUX2 (CMOS)", fl::netlist::GateType::kMux);
  for (int k = 2; k <= 8; ++k) {
    const GateCost c = fl::ppa::stt_lut_cost(k);
    const fl::ppa::LutOverhead o = fl::ppa::stt_lut_overhead(k);
    char area[32], power[32], delay[32], aovh[32], dovh[32];
    std::snprintf(area, sizeof(area), "%.2f", c.area_um2);
    std::snprintf(power, sizeof(power), "%.1f", c.power_nw);
    std::snprintf(delay, sizeof(delay), "%.3f", c.delay_ns);
    std::snprintf(aovh, sizeof(aovh), "%+.0f%%", o.area * 100);
    std::snprintf(dovh, sizeof(dovh), "%+.0f%%", o.delay * 100);
    table.row({("STT-LUT" + std::to_string(k)).c_str(), area, power, delay,
               aovh, dovh},
              14);
  }
  std::printf("(paper shape: LUT2..LUT5 within the standard-cell band; "
              "LUT6+ costs take off)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (int k = 2; k <= 8; ++k) {
    benchmark::RegisterBenchmark(("fig5/stt_lut_k=" + std::to_string(k)).c_str(),
                                 run_lut)
        ->Arg(k)
        ->Unit(benchmark::kNanosecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
