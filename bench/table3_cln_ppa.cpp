// Table 3: power/area/delay and SAT-resilience of blocking vs almost
// non-blocking CLNs (shuffle N=32..512, LOG(32,3,1), LOG(64,4,1)).
//
// Expected shape: LOG(N,...) costs ~2x the same-size shuffle (stage ratio);
// the smallest SAT-resilient non-blocking network (N=64) is far cheaper
// than the smallest SAT-resilient blocking one (N=512) — the paper reports
// roughly one third of the power.
#include <benchmark/benchmark.h>

#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "ppa/estimator.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::ClnTopology;

struct RowSpec {
  const char* label;
  int n;
  ClnTopology topology;
  int extra_stages = -1;  // -1 = paper default (log2N - 2)
  int copies = 1;
  bool run_attack = true;
};

struct RowResult {
  fl::ppa::PpaReport ppa;
  bool sat_resilient = false;  // attack timed out at the scaled budget
};

std::vector<RowSpec> rows() {
  if (fl::bench::quick_mode()) {
    return {{"Shuffle (N=16)", 16, ClnTopology::kShuffleBlocking},
            {"LOG(16,2,1)", 16, ClnTopology::kBanyanNonBlocking}};
  }
  return {
      {"Shuffle (N=32)", 32, ClnTopology::kShuffleBlocking},
      {"LOG(32,3,1)", 32, ClnTopology::kBanyanNonBlocking},
      {"Shuffle (N=64)", 64, ClnTopology::kShuffleBlocking},
      {"LOG(64,4,1)", 64, ClnTopology::kBanyanNonBlocking},
      {"Shuffle (N=128)", 128, ClnTopology::kShuffleBlocking},
      {"Shuffle (N=256)", 256, ClnTopology::kShuffleBlocking},
      {"Shuffle (N=512)", 512, ClnTopology::kShuffleBlocking},
      // Strictly non-blocking point (paper: M=3, P=6 at N=64, >5x the
      // blocking network's area). PPA row only — its SAT hardness strictly
      // dominates LOG(64,4,1).
      {"LOG(64,3,6)", 64, ClnTopology::kBanyanNonBlocking, 3, 6, false},
  };
}

std::vector<RowResult> g_results;

void run_row(benchmark::State& state) {
  const RowSpec spec = rows()[state.range(0)];
  RowResult row;
  for (auto _ : state) {
    // Hardware cost of the bare CLN.
    fl::core::ClnConfig config;
    config.n = spec.n;
    config.topology = spec.topology;
    config.extra_stages = spec.extra_stages;
    config.copies = spec.copies;
    fl::netlist::Netlist hw;
    std::vector<fl::netlist::GateId> inputs;
    for (int i = 0; i < spec.n; ++i) inputs.push_back(hw.add_input("x"));
    const fl::core::ClnInstance inst =
        fl::core::ClnBuilder(config).build(hw, inputs);
    for (const fl::netlist::GateId o : inst.outputs) hw.mark_output(o);
    row.ppa = fl::ppa::estimate_ppa(hw);

    // SAT resilience at the scaled timeout (Table 2 harness).
    if (!spec.run_attack) {
      row.sat_resilient = true;  // dominated by the smaller LOG(64,4,1)
      continue;
    }
    const fl::netlist::Netlist original = fl::bench::identity_circuit(spec.n);
    fl::core::FullLockConfig lock_config = fl::core::FullLockConfig::with_plrs(
        {spec.n}, spec.topology, fl::core::CycleMode::kAvoid, false, 0.5);
    const fl::core::LockedCircuit locked =
        fl::core::full_lock(original, lock_config);
    const fl::attacks::Oracle oracle(original);
    fl::attacks::AttackOptions options;
    options.timeout_s = fl::bench::attack_timeout_s();
    const fl::attacks::AttackResult attack =
        fl::attacks::SatAttack(options).run(locked, oracle);
    row.sat_resilient = attack.status == fl::attacks::AttackStatus::kTimeout;
  }
  state.counters["area_um2"] = row.ppa.area_um2;
  state.counters["power_nw"] = row.ppa.power_nw;
  state.counters["delay_ns"] = row.ppa.critical_delay_ns;
  state.counters["sat_resilient"] = row.sat_resilient ? 1 : 0;
  g_results[state.range(0)] = row;
}

void print_table() {
  TablePrinter table("Table 3 — CLN power/area/delay and SAT resilience "
                     "(analytical 32nm-class model; see DESIGN.md)");
  table.row({"CLN", "area_um2", "power_nW", "delay_ns", "SAT-resilient"}, 18);
  const auto specs = rows();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    char area[32], power[32], delay[32];
    std::snprintf(area, sizeof(area), "%.1f", g_results[i].ppa.area_um2);
    std::snprintf(power, sizeof(power), "%.1f", g_results[i].ppa.power_nw);
    std::snprintf(delay, sizeof(delay), "%.3f",
                  g_results[i].ppa.critical_delay_ns);
    table.row({specs[i].label, area, power, delay,
               g_results[i].sat_resilient ? "yes" : "no"},
              18);
  }
  std::printf("(paper shape: LOG(64,4,1) is the smallest resilient network "
              "and costs ~1/3 of the smallest resilient shuffle, N=512)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  g_results.resize(rows().size());
  for (std::size_t i = 0; i < rows().size(); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("table3/") + rows()[i].label).c_str(), run_row)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
