// Figure 7: average clauses-to-variables ratio of the CNF the SAT solver
// works on during deobfuscation, per locking scheme. Every scheme is
// resolved through the lock-scheme registry (locking/scheme.h), so new
// registry entries join the grid by adding one SchemeSpec row.
//
// Expected shape: Full-Lock highest (paper: 3.77, in the hard 3..6 band of
// Fig. 1), with InterLock (logic folded into routing blocks) close behind,
// Cross-Lock next (cascade-free MUX trees), LUT-Lock after that, and
// XOR/point-function schemes (RLL / SARLock / Anti-SAT / SFLL-HD) lowest.
//
// The grid is one cell per (scheme, circuit) pair, fanned out over the
// shared worker pool (--jobs N / FL_JOBS); the table averages each scheme
// over its circuits. --jsonl PATH / FL_JSONL logs each pair durably; an
// interrupted sweep continues with --resume (see EXPERIMENTS.md).
#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "bench/bench_util.h"
#include "cnf/miter.h"
#include "locking/scheme.h"
#include "netlist/profiles.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::LockedCircuit;
using fl::netlist::Netlist;

// One grid row per registry scheme. Key budget roughly equalized across
// schemes so the ratio comparison is about CNF *structure*, not key count;
// `routing_ladder` marks the wire-hungry schemes that fall back down the
// size ladder on small hosts.
struct SchemeSpec {
  const char* display;  // table label
  const char* name;     // registry name (lock::find_scheme)
  const char* params;   // canonical "key=value" options
  bool routing_ladder;  // retry shrinking `sizes` until the host fits
};

const std::vector<SchemeSpec>& schemes() {
  static const std::vector<SchemeSpec> s = {
      {"RLL", "rll", "keys=64", false},
      {"SARLock", "sarlock", "keys=16", false},
      {"Anti-SAT", "antisat", "inputs=16", false},
      {"SFLL-HD", "sfll-hd", "keys=16,hd=2", false},
      {"LUT-Lock", "lut-lock", "luts=24,prefer_small=0", false},
      {"Cross-Lock", "cross-lock", "", false},
      {"InterLock", "interlock", "", true},
      {"Full-Lock", "full-lock", "", true},
  };
  return s;
}

LockedCircuit lock_scheme(const SchemeSpec& spec, const Netlist& original,
                          std::uint64_t seed) {
  if (spec.routing_ladder) {
    // Resilient-class routing configuration; smaller hosts fall back down
    // the ladder until enough disjoint live wires exist.
    for (const std::vector<int>& sizes :
         {std::vector<int>{32, 16, 8}, {16, 16, 8}, {16, 8}, {8}}) {
      try {
        return fl::lock::lock_with(
            spec.name, original,
            fl::lock::make_options(seed, sizes, spec.params));
      } catch (const std::invalid_argument&) {
        continue;
      }
    }
    throw std::invalid_argument(std::string(spec.name) +
                                ": host too small for any ladder config");
  }
  // Wire selection depends on the random draw for the crossbar schemes;
  // retry a deterministic sequence of sub-seeds before giving up.
  for (std::uint64_t attempt = 0; attempt < 16; ++attempt) {
    try {
      return fl::lock::lock_with(
          spec.name, original,
          fl::lock::make_options(fl::runtime::derive_seed(seed, {attempt}),
                                 {}, spec.params));
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  throw std::invalid_argument(std::string(spec.name) +
                              ": no viable configuration in 16 tries");
}

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  return {"c432", "c499", "c880", "i4"};
}

struct Cell {
  std::size_t scheme;
  std::size_t circuit;
  std::uint64_t seed;
};

double run_cell(const SchemeSpec& scheme, const std::string& circuit,
                std::uint64_t seed) {
  const Netlist original = fl::netlist::make_circuit(circuit, 3);
  const LockedCircuit locked = lock_scheme(scheme, original, seed);
  // The CNF a MiniSAT-frontend attack tool works on mid-attack: miter
  // plus DIP-constraint copies, naively encoded (see
  // cnf::deobfuscation_cnf_ratio for the exact methodology).
  // Deep into an attack run (dozens of DIP copies) the per-copy gate
  // encoding dominates over the free key variables, as in the paper's
  // long 2e6 s runs.
  return fl::cnf::deobfuscation_cnf_ratio(locked.netlist, /*num_dips=*/64, 29);
}

void print_table(const std::vector<SchemeSpec>& specs,
                 const std::vector<double>& ratios) {
  const std::size_t per_scheme = circuits().size();
  TablePrinter table("Fig. 7 — average clauses/variables ratio during "
                     "deobfuscation");
  table.row({"scheme", "ratio"}, 14);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    double sum = 0.0;
    for (std::size_t c = 0; c < per_scheme; ++c) {
      sum += ratios[s * per_scheme + c];
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  sum / static_cast<double>(per_scheme));
    table.row({specs[s].display, buf}, 14);
  }
  std::printf("(paper shape: Full-Lock and InterLock highest at ~3.8, "
              "Cross-Lock closest, XOR/point-function schemes lowest)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const fl::runtime::RunnerArgs run_args =
        fl::runtime::parse_runner_args(argc, argv);
    const std::uint64_t base = fl::bench::base_seed(13);
    const std::vector<std::string> circuit_names = circuits();

    std::vector<Cell> grid;
    for (std::size_t s = 0; s < schemes().size(); ++s) {
      for (std::size_t c = 0; c < circuit_names.size(); ++c) {
        grid.push_back({s, c,
                        fl::runtime::derive_seed(
                            base, {static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(c)})});
      }
    }
    std::vector<double> ratios(grid.size(), 0.0);

    fl::runtime::SweepSession session("fig7", grid.size(), base, run_args);
    const auto record_base = [&](std::size_t i) {
      fl::runtime::JsonObject o;
      o.field("cell", i)
          .field("bench", "fig7")
          .field("scheme", schemes()[grid[i].scheme].name)
          .field("circuit", circuit_names[grid[i].circuit])
          .field("seed", grid[i].seed);
      return o;
    };

    std::printf("fig7: %zu cells on %d worker(s), %zu already done\n",
                grid.size(), run_args.jobs, session.num_resumed());
    const fl::runtime::GridReport report = fl::runtime::run_grid(
        grid.size(), session.grid_config(),
        [&](const fl::runtime::CellContext& ctx) {
          const std::size_t i = ctx.index;
          const Cell& cell = grid[i];
          ratios[i] = run_cell(schemes()[cell.scheme],
                               circuit_names[cell.circuit], cell.seed);
          // CNF-ratio cells have no interrupt hook; one that finished
          // after the signal writes no record so --resume re-runs it.
          if (ctx.interrupt != nullptr &&
              ctx.interrupt->load(std::memory_order_relaxed)) {
            session.note_interrupted(i);
            return;
          }
          if (session.sink() != nullptr) {
            fl::runtime::JsonObject o = record_base(i);
            o.field("clause_var_ratio", ratios[i]);
            session.sink()->write(i, o.str());
          }
        });

    print_table(schemes(), ratios);
    return session.finish(report, record_base);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
