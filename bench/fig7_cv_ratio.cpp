// Figure 7: average clauses-to-variables ratio of the CNF the SAT solver
// works on during deobfuscation, per locking scheme.
//
// Expected shape: Full-Lock highest (paper: 3.77, in the hard 3..6 band of
// Fig. 1), Cross-Lock next (cascade-free MUX trees), LUT-Lock after that,
// and XOR/point-function schemes (RLL / SARLock / Anti-SAT) lowest.
#include <benchmark/benchmark.h>

#include <map>

#include "attacks/oracle.h"
#include "cnf/miter.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "locking/antisat.h"
#include "locking/crosslock.h"
#include "locking/lutlock.h"
#include "locking/rll.h"
#include "locking/sarlock.h"
#include "netlist/profiles.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::LockedCircuit;
using fl::netlist::Netlist;

// Key budget roughly equalized across schemes so the ratio comparison is
// about CNF *structure*, not key count.
LockedCircuit lock_scheme(const std::string& scheme, const Netlist& original,
                          std::uint64_t seed) {
  if (scheme == "RLL") {
    fl::lock::RllConfig c;
    c.num_keys = 64;
    c.seed = seed;
    return fl::lock::rll_lock(original, c);
  }
  if (scheme == "SARLock") {
    fl::lock::SarLockConfig c;
    c.num_keys = 16;
    c.seed = seed;
    return fl::lock::sarlock_lock(original, c);
  }
  if (scheme == "Anti-SAT") {
    fl::lock::AntiSatConfig c;
    c.block_inputs = 16;
    c.seed = seed;
    return fl::lock::antisat_lock(original, c);
  }
  if (scheme == "LUT-Lock") {
    fl::lock::LutLockConfig c;
    c.num_luts = 24;
    c.prefer_small = false;  // paper's LUT-Lock targets multi-input gates
    c.seed = seed;
    return fl::lock::lutlock_lock(original, c);
  }
  if (scheme == "Cross-Lock") {
    fl::lock::CrossLockConfig c;  // the paper's 32x36 crossbar
    c.seed = seed;
    return fl::lock::crosslock_lock(original, c);
  }
  // Resilient-class Full-Lock configuration; smaller hosts fall back down
  // the ladder until enough disjoint live wires exist.
  for (const std::vector<int>& sizes :
       {std::vector<int>{32, 16, 8}, {16, 16, 8}, {16, 8}, {8}}) {
    fl::core::FullLockConfig c = fl::core::FullLockConfig::with_plrs(sizes);
    c.seed = seed;
    try {
      return fl::core::full_lock(original, c);
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  throw std::invalid_argument("host too small for any Full-Lock config");
}

const std::vector<std::string>& schemes() {
  static const std::vector<std::string> s = {
      "RLL", "SARLock", "Anti-SAT", "LUT-Lock", "Cross-Lock", "Full-Lock"};
  return s;
}

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  return {"c432", "c499", "c880", "i4"};
}

std::map<std::string, double> g_ratio;

void run_scheme(benchmark::State& state) {
  const std::string scheme = schemes()[state.range(0)];
  double ratio_sum = 0.0;
  int samples = 0;
  for (auto _ : state) {
    for (const std::string& circuit : circuits()) {
      const Netlist original = fl::netlist::make_circuit(circuit, 3);
      const LockedCircuit locked = lock_scheme(scheme, original, 13);
      // The CNF a MiniSAT-frontend attack tool works on mid-attack: miter
      // plus DIP-constraint copies, naively encoded (see
      // cnf::deobfuscation_cnf_ratio for the exact methodology).
      // Deep into an attack run (dozens of DIP copies) the per-copy gate
      // encoding dominates over the free key variables, as in the paper's
      // long 2e6 s runs.
      ratio_sum += fl::cnf::deobfuscation_cnf_ratio(locked.netlist,
                                                    /*num_dips=*/64, 29);
      ++samples;
    }
  }
  const double mean = samples > 0 ? ratio_sum / samples : 0.0;
  state.counters["clause_var_ratio"] = mean;
  g_ratio[scheme] = mean;
}

void print_table() {
  TablePrinter table("Fig. 7 — average clauses/variables ratio during "
                     "deobfuscation");
  table.row({"scheme", "ratio"}, 14);
  for (const std::string& s : schemes()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", g_ratio[s]);
    table.row({s, buf}, 14);
  }
  std::printf("(paper shape: Full-Lock highest at ~3.8, Cross-Lock closest, "
              "XOR/point-function schemes lowest)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (std::size_t i = 0; i < schemes().size(); ++i) {
    benchmark::RegisterBenchmark(("fig7/" + schemes()[i]).c_str(), run_scheme)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
