// Table 4: CycSAT execution time on Full-Lock across ISCAS-85 / MCNC
// benchmark profiles, as the number and size of inserted PLRs grows
// (k x 16x16 and k x 32x32).
//
// Expected shape: time climbs steeply with PLR count/size; every circuit
// eventually hits TO; larger CLNs reach TO with fewer PLRs. An ablation
// column (1x16 CLN-only, no LUT twisting) quantifies §3.2's contribution.
#include <benchmark/benchmark.h>

#include <map>

#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "netlist/profiles.h"

namespace {

using fl::bench::TablePrinter;

struct Column {
  const char* label;
  std::vector<int> cln_sizes;
  bool twist_luts;
};

const std::vector<Column>& columns() {
  // Scaled-down analogue of the paper's 16x16/32x32 sweep: with the bench
  // timeout at seconds instead of 2e6 s, the breakable-to-TO gradient sits
  // at 4..16-wire PLRs. "-noLUT" is the §3.2 ablation (CLN only).
  static const std::vector<Column> cols = {
      {"1x4", {4}, true},
      {"1x8-noLUT", {8}, false},
      {"1x8", {8}, true},
      {"2x8-noLUT", {8, 8}, false},
      {"2x8", {8, 8}, true},
      {"1x16", {16}, true},
      {"2x16", {16, 16}, true},
  };
  return cols;
}

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  if (fl::bench::env_flag("FULLLOCK_FULL")) {
    std::vector<std::string> all;
    for (const auto& p : fl::netlist::table5_profiles()) all.push_back(p.name);
    return all;
  }
  return {"c432", "c499", "c880", "c1355", "apex2", "i4"};
}

struct CellResult {
  double seconds = 0.0;
  bool timed_out = false;
  std::uint64_t iterations = 0;
  bool cyclic = false;
};
std::map<std::pair<int, int>, CellResult> g_results;  // {circuit, column}

void run_cell(benchmark::State& state) {
  const std::string circuit = circuits()[state.range(0)];
  const Column& column = columns()[state.range(1)];
  CellResult cell;
  for (auto _ : state) {
    const fl::netlist::Netlist original = fl::netlist::make_circuit(circuit, 1);
    // Random insertion (paper §3.3): cycles allowed, hence CycSAT.
    fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
        column.cln_sizes, fl::core::ClnTopology::kBanyanNonBlocking,
        fl::core::CycleMode::kAllow, column.twist_luts, 0.5);
    config.seed = 11;
    const fl::core::LockedCircuit locked =
        fl::core::full_lock(original, config);
    cell.cyclic = locked.netlist.is_cyclic();
    const fl::attacks::Oracle oracle(original);
    fl::attacks::AttackOptions options;
    options.timeout_s = fl::bench::attack_timeout_s();
    const fl::attacks::AttackResult result =
        fl::attacks::CycSat(options).run(locked, oracle);
    cell.seconds = result.seconds;
    cell.timed_out = result.status != fl::attacks::AttackStatus::kSuccess;
    cell.iterations = result.iterations;
  }
  state.counters["timed_out"] = cell.timed_out ? 1 : 0;
  state.counters["iterations"] = static_cast<double>(cell.iterations);
  g_results[{state.range(0), state.range(1)}] = cell;
}

void print_table() {
  TablePrinter table(
      "Table 4 — CycSAT time (s) on Full-Lock, TO = " +
      std::to_string(fl::bench::attack_timeout_s()) + " s");
  std::vector<std::string> header{"circuit"};
  for (const Column& c : columns()) header.push_back(c.label);
  table.row(header);
  const auto names = circuits();
  for (std::size_t ci = 0; ci < names.size(); ++ci) {
    std::vector<std::string> cells{names[ci]};
    for (std::size_t col = 0; col < columns().size(); ++col) {
      const auto it = g_results.find({static_cast<int>(ci),
                                      static_cast<int>(col)});
      if (it == g_results.end()) {
        cells.push_back("-");
        continue;
      }
      std::string text =
          fl::bench::fmt_time_or_to(it->second.timed_out, it->second.seconds);
      if (it->second.cyclic) text += "*";
      cells.push_back(text);
    }
    table.row(cells);
  }
  std::printf("(* = insertion produced a cyclic netlist; paper shape: time "
              "climbs with PLR count/size until TO; 32x32 PLRs TO with "
              "fewer insertions than 16x16)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const auto names = circuits();
  for (std::size_t ci = 0; ci < names.size(); ++ci) {
    for (std::size_t col = 0; col < columns().size(); ++col) {
      const std::string bench_name =
          "table4/" + names[ci] + "/" + columns()[col].label;
      benchmark::RegisterBenchmark(bench_name.c_str(), run_cell)
          ->Args({static_cast<int>(ci), static_cast<int>(col)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
