// Table 4: CycSAT execution time on Full-Lock across ISCAS-85 / MCNC
// benchmark profiles, as the number and size of inserted PLRs grows
// (k x 16x16 and k x 32x32).
//
// Expected shape: time climbs steeply with PLR count/size; every circuit
// eventually hits TO; larger CLNs reach TO with fewer PLRs. An ablation
// column (1x16 CLN-only, no LUT twisting) quantifies §3.2's contribution.
//
// The (circuit x column) grid fans out over the shared worker pool
// (--jobs N / FL_JOBS) with per-cell seeds derived from the grid
// coordinates; --jsonl PATH / FL_JSONL logs every cell durably, and an
// interrupted or killed sweep continues with --resume (see EXPERIMENTS.md).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "attacks/cycsat.h"
#include "attacks/oracle.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "netlist/profiles.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"

namespace {

using fl::bench::TablePrinter;

struct Column {
  const char* label;
  std::vector<int> cln_sizes;
  bool twist_luts;
};

const std::vector<Column>& columns() {
  // Scaled-down analogue of the paper's 16x16/32x32 sweep: with the bench
  // timeout at seconds instead of 2e6 s, the breakable-to-TO gradient sits
  // at 4..16-wire PLRs. "-noLUT" is the §3.2 ablation (CLN only).
  static const std::vector<Column> cols = {
      {"1x4", {4}, true},
      {"1x8-noLUT", {8}, false},
      {"1x8", {8}, true},
      {"2x8-noLUT", {8, 8}, false},
      {"2x8", {8, 8}, true},
      {"1x16", {16}, true},
      {"2x16", {16, 16}, true},
  };
  return cols;
}

std::vector<std::string> circuits() {
  if (fl::bench::quick_mode()) return {"c432"};
  if (fl::bench::env_flag("FULLLOCK_FULL")) {
    std::vector<std::string> all;
    for (const auto& p : fl::netlist::table5_profiles()) all.push_back(p.name);
    return all;
  }
  return {"c432", "c499", "c880", "c1355", "apex2", "i4"};
}

struct Cell {
  std::size_t circuit;
  std::size_t column;
  std::uint64_t seed;
};

struct CellResult {
  bool cyclic = false;
  fl::attacks::AttackResult attack;
};

CellResult run_cell(const std::string& circuit, const Column& column,
                    std::uint64_t seed, const fl::runtime::CellContext& ctx,
                    const fl::runtime::RunnerArgs& run_args,
                    fl::bench::SweepTrace& trace) {
  CellResult cell;
  const fl::netlist::Netlist original = fl::netlist::make_circuit(circuit, 1);
  // Random insertion (paper §3.3): cycles allowed, hence CycSAT.
  fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
      column.cln_sizes, fl::core::ClnTopology::kBanyanNonBlocking,
      fl::core::CycleMode::kAllow, column.twist_luts, 0.5);
  config.seed = seed;
  const fl::core::LockedCircuit locked = fl::core::full_lock(original, config);
  cell.cyclic = locked.netlist.is_cyclic();
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = ctx.effective_timeout(fl::bench::attack_timeout_s());
  options.interrupt = ctx.interrupt;
  options.memory_limit_mb = run_args.memory_limit_mb;
  trace.wire(options, ctx.index);
  cell.attack = fl::attacks::CycSat(options).run(locked, oracle);
  return cell;
}

void print_table(const std::vector<std::string>& names,
                 const std::vector<CellResult>& results) {
  TablePrinter table(
      "Table 4 — CycSAT time (s) on Full-Lock, TO = " +
      std::to_string(fl::bench::attack_timeout_s()) + " s");
  std::vector<std::string> header{"circuit"};
  for (const Column& c : columns()) header.push_back(c.label);
  table.row(header);
  for (std::size_t ci = 0; ci < names.size(); ++ci) {
    std::vector<std::string> cells{names[ci]};
    for (std::size_t col = 0; col < columns().size(); ++col) {
      const CellResult& cell = results[ci * columns().size() + col];
      const bool timed_out =
          cell.attack.status != fl::attacks::AttackStatus::kSuccess;
      std::string text =
          fl::bench::fmt_time_or_to(timed_out, cell.attack.seconds);
      if (cell.cyclic) text += "*";
      cells.push_back(text);
    }
    table.row(cells);
  }
  std::printf("(* = insertion produced a cyclic netlist; paper shape: time "
              "climbs with PLR count/size until TO; 32x32 PLRs TO with "
              "fewer insertions than 16x16)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const fl::runtime::RunnerArgs run_args =
        fl::runtime::parse_runner_args(argc, argv);
    const std::uint64_t base = fl::bench::base_seed(11);
    const std::vector<std::string> names = circuits();

    std::vector<Cell> grid;
    for (std::size_t ci = 0; ci < names.size(); ++ci) {
      for (std::size_t col = 0; col < columns().size(); ++col) {
        grid.push_back({ci, col,
                        fl::runtime::derive_seed(
                            base, {static_cast<std::uint64_t>(ci),
                                   static_cast<std::uint64_t>(col)})});
      }
    }
    std::vector<CellResult> results(grid.size());
    fl::bench::SweepTrace trace(run_args);

    fl::runtime::SweepSession session("table4", grid.size(), base, run_args);
    const auto record_base = [&](std::size_t i) {
      fl::runtime::JsonObject o;
      o.field("cell", i)
          .field("bench", "table4")
          .field("circuit", names[grid[i].circuit])
          .field("plr", columns()[grid[i].column].label)
          .field("seed", grid[i].seed);
      return o;
    };

    std::printf("table4: %zu cells on %d worker(s), %zu already done\n",
                grid.size(), run_args.jobs, session.num_resumed());
    const fl::runtime::GridReport report = fl::runtime::run_grid(
        grid.size(), session.grid_config(),
        [&](const fl::runtime::CellContext& ctx) {
          const std::size_t i = ctx.index;
          const Cell& cell = grid[i];
          results[i] = run_cell(names[cell.circuit], columns()[cell.column],
                                cell.seed, ctx, run_args, trace);
          if (results[i].attack.status ==
              fl::attacks::AttackStatus::kInterrupted) {
            session.note_interrupted(i);
            return;
          }
          if (session.sink() != nullptr) {
            fl::runtime::JsonObject o = record_base(i);
            o.field("cyclic", results[i].cyclic);
            fl::bench::append_attack_fields(o, results[i].attack);
            session.sink()->write(i, o.str());
          }
        });

    print_table(names, results);
    return session.finish(report, record_base);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
