// Table 2: SAT-attack iterations and execution time on a single CLN
// (locked identity circuit), blocking shuffle vs almost-non-blocking
// LOG(N, log2N-2, 1), N = 4 .. 512.
//
// Expected shape (paper, scaled by FULLLOCK_TIMEOUT_S instead of 2e6 s):
// time grows exponentially in N for both topologies; the non-blocking
// network is >= an order of magnitude harder at equal N and times out
// first (paper: non-blocking unbroken beyond N=64, blocking only at 512).
//
// The (topology x N) grid fans out over the shared worker pool
// (--jobs N / FL_JOBS; --jobs 1 = the serial reference loop) and every cell
// can be logged to a durable JSONL sink (--jsonl PATH / FL_JSONL). An
// interrupted or killed sweep continues where it left off with --resume;
// see EXPERIMENTS.md for the crash-safe sweep flags (--retries,
// --cell-timeout, --mem-mb).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::ClnTopology;

struct Cell {
  ClnTopology topology;
  int n;
  std::uint64_t seed;
};

struct CellResult {
  std::size_t key_bits = 0;
  fl::attacks::AttackResult attack;
};

const char* topology_name(ClnTopology topo) {
  return topo == ClnTopology::kShuffleBlocking ? "blocking" : "nonblocking";
}

std::vector<int> sweep_sizes() {
  if (fl::bench::quick_mode()) return {4, 8, 16};
  const int max_n = fl::bench::env_int("FULLLOCK_MAX_N", 512);
  std::vector<int> sizes;
  for (int n = 4; n <= max_n; n *= 2) sizes.push_back(n);
  return sizes;
}

CellResult run_cell(const Cell& cell, const fl::runtime::CellContext& ctx,
                    const fl::runtime::RunnerArgs& run_args,
                    fl::bench::SweepTrace& trace) {
  CellResult result;
  const fl::netlist::Netlist original = fl::bench::identity_circuit(cell.n);
  // CLN-only lock: no LUT twisting so the instance is exactly one CLN,
  // matching the paper's Table 2 setup.
  fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
      {cell.n}, cell.topology, fl::core::CycleMode::kAvoid,
      /*twist_luts=*/false,
      /*negate_probability=*/0.5);
  config.seed = cell.seed;
  const fl::core::LockedCircuit locked = fl::core::full_lock(original, config);
  result.key_bits = locked.key_bits();
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = ctx.effective_timeout(fl::bench::attack_timeout_s());
  options.interrupt = ctx.interrupt;
  options.memory_limit_mb = run_args.memory_limit_mb;
  trace.wire(options, ctx.index);
  result.attack = fl::attacks::SatAttack(options).run(locked, oracle);
  return result;
}

void print_table(const std::vector<Cell>& grid,
                 const std::vector<CellResult>& results,
                 const fl::runtime::GridReport& report) {
  const double timeout = fl::bench::attack_timeout_s();
  TablePrinter table("Table 2 — SAT attack on CLN-locked identity circuit "
                     "(TO = " + std::to_string(timeout) + " s)");
  const auto emit = [&](ClnTopology topo, const char* name) {
    std::printf("-- %s --\n", name);
    table.row({"N", "key_bits", "iterations", "time_s"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].topology != topo) continue;
      if (report.cells[i].status != fl::runtime::CellOutcome::Status::kOk) {
        table.row({std::to_string(grid[i].n), "-", "-",
                   fl::runtime::to_string(report.cells[i].status)});
        continue;
      }
      const CellResult& cell = results[i];
      const bool timed_out =
          cell.attack.status == fl::attacks::AttackStatus::kTimeout;
      table.row({std::to_string(grid[i].n), std::to_string(cell.key_bits),
                 timed_out ? ">" + std::to_string(cell.attack.iterations)
                           : std::to_string(cell.attack.iterations),
                 fl::bench::fmt_time_or_to(timed_out, cell.attack.seconds)});
    }
  };
  emit(ClnTopology::kShuffleBlocking, "shuffle-based blocking CLN");
  emit(ClnTopology::kBanyanNonBlocking,
       "almost non-blocking CLN LOG(N, log2N-2, 1)");
  std::printf("(paper shape: non-blocking TOs at smaller N than blocking; "
              "time grows exponentially in N)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const fl::runtime::RunnerArgs run_args =
        fl::runtime::parse_runner_args(argc, argv);
    const std::uint64_t base = fl::bench::base_seed(7);

    std::vector<Cell> grid;
    for (const ClnTopology topo :
         {ClnTopology::kShuffleBlocking, ClnTopology::kBanyanNonBlocking}) {
      for (const int n : sweep_sizes()) {
        grid.push_back({topo, n,
                        fl::runtime::derive_seed(
                            base, {static_cast<std::uint64_t>(topo),
                                   static_cast<std::uint64_t>(n)})});
      }
    }
    std::vector<CellResult> results(grid.size());
    fl::bench::SweepTrace trace(run_args);

    fl::runtime::SweepSession session("table2", grid.size(), base, run_args);
    const auto record_base = [&](std::size_t i) {
      fl::runtime::JsonObject o;
      o.field("cell", i)
          .field("bench", "table2")
          .field("topology", topology_name(grid[i].topology))
          .field("n", grid[i].n)
          .field("seed", grid[i].seed);
      return o;
    };

    std::printf("table2: %zu cells on %d worker(s), %zu already done\n",
                grid.size(), run_args.jobs, session.num_resumed());
    const fl::runtime::GridReport report = fl::runtime::run_grid(
        grid.size(), session.grid_config(),
        [&](const fl::runtime::CellContext& ctx) {
          const std::size_t i = ctx.index;
          results[i] = run_cell(grid[i], ctx, run_args, trace);
          if (results[i].attack.status ==
              fl::attacks::AttackStatus::kInterrupted) {
            session.note_interrupted(i);
            return;
          }
          if (session.sink() != nullptr) {
            fl::runtime::JsonObject o = record_base(i);
            o.field("key_bits", results[i].key_bits);
            fl::bench::append_attack_fields(o, results[i].attack);
            session.sink()->write(i, o.str());
          }
        });

    print_table(grid, results, report);
    return session.finish(report, record_base);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
