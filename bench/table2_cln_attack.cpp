// Table 2: SAT-attack iterations and execution time on a single CLN
// (locked identity circuit), blocking shuffle vs almost-non-blocking
// LOG(N, log2N-2, 1), N = 4 .. 512.
//
// Expected shape (paper, scaled by FULLLOCK_TIMEOUT_S instead of 2e6 s):
// time grows exponentially in N for both topologies; the non-blocking
// network is >= an order of magnitude harder at equal N and times out
// first (paper: non-blocking unbroken beyond N=64, blocking only at 512).
#include <benchmark/benchmark.h>

#include <map>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"

namespace {

using fl::bench::TablePrinter;
using fl::core::ClnTopology;

struct CellResult {
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  bool timed_out = false;
  std::size_t key_bits = 0;
};
// key: {topology, n}
std::map<std::pair<int, int>, CellResult> g_results;

std::vector<int> sweep_sizes() {
  if (fl::bench::quick_mode()) return {4, 8, 16};
  const int max_n = fl::bench::env_int("FULLLOCK_MAX_N", 512);
  std::vector<int> sizes;
  for (int n = 4; n <= max_n; n *= 2) sizes.push_back(n);
  return sizes;
}

void run_cell(benchmark::State& state) {
  const auto topology = static_cast<ClnTopology>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  CellResult cell;
  for (auto _ : state) {
    const fl::netlist::Netlist original = fl::bench::identity_circuit(n);
    // CLN-only lock: no LUT twisting so the instance is exactly one CLN,
    // matching the paper's Table 2 setup.
    fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
        {n}, topology, fl::core::CycleMode::kAvoid, /*twist_luts=*/false,
        /*negate_probability=*/0.5);
    config.seed = 7;
    const fl::core::LockedCircuit locked = fl::core::full_lock(original, config);
    cell.key_bits = locked.key_bits();
    const fl::attacks::Oracle oracle(original);
    fl::attacks::AttackOptions options;
    options.timeout_s = fl::bench::attack_timeout_s();
    const fl::attacks::AttackResult result =
        fl::attacks::SatAttack(options).run(locked, oracle);
    cell.iterations = result.iterations;
    cell.seconds = result.seconds;
    cell.timed_out = result.status == fl::attacks::AttackStatus::kTimeout;
  }
  state.counters["iterations"] = static_cast<double>(cell.iterations);
  state.counters["timed_out"] = cell.timed_out ? 1 : 0;
  g_results[{state.range(0), n}] = cell;
}

void print_table() {
  const double timeout = fl::bench::attack_timeout_s();
  TablePrinter table("Table 2 — SAT attack on CLN-locked identity circuit "
                     "(TO = " + std::to_string(timeout) + " s)");
  const auto emit = [&](ClnTopology topo, const char* name) {
    std::printf("-- %s --\n", name);
    table.row({"N", "key_bits", "iterations", "time_s"});
    for (const auto& [key, cell] : g_results) {
      if (key.first != static_cast<int>(topo)) continue;
      table.row({std::to_string(key.second), std::to_string(cell.key_bits),
                 cell.timed_out ? ">" + std::to_string(cell.iterations)
                                : std::to_string(cell.iterations),
                 fl::bench::fmt_time_or_to(cell.timed_out, cell.seconds)});
    }
  };
  emit(ClnTopology::kShuffleBlocking, "shuffle-based blocking CLN");
  emit(ClnTopology::kBanyanNonBlocking,
       "almost non-blocking CLN LOG(N, log2N-2, 1)");
  std::printf("(paper shape: non-blocking TOs at smaller N than blocking; "
              "time grows exponentially in N)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ClnTopology topo :
       {ClnTopology::kShuffleBlocking, ClnTopology::kBanyanNonBlocking}) {
    for (const int n : sweep_sizes()) {
      const std::string name =
          std::string("table2/") +
          (topo == ClnTopology::kShuffleBlocking ? "blocking" : "nonblocking") +
          "/N=" + std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), run_cell)
          ->Args({static_cast<int>(topo), n})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
