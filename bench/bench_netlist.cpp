// Netlist-substrate benchmark: proves the arena/SIMD stack at production
// scale (Table-5-shaped synthetic circuits scaled to 64K–1M gates).
//
// Per profile the bench runs the full substrate path end-to-end:
//   generate -> graph caches (topo/fanout/levels) -> structural hashing
//   (optimize) -> oracle simulation throughput, legacy 64-bit run() vs the
//   wide run_batch() engine -> Full-Lock PLR lock -> iteration-bounded SAT
//   attack -> verify_unlocks with the correct key.
//
// Emits one JSONL record per profile plus a trailing summary record to
// BENCH_netlist.json (--out PATH). Wall-clock and throughput fields carry
// the `_s` suffix (the only fields allowed to differ between runs);
// `speedup` follows the bench_solver precedent. The oracle accounting
// check (`accounting_ok`) asserts num_queries() == patterns evaluated.
//
// Flags:
//   --smoke       synth64k only, small pattern counts (CI sanitizers)
//   --out PATH    output file (default BENCH_netlist.json)
//   --repeat N    timing repetitions for the throughput suite, min is
//                 reported (default 3)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <random>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "core/verify.h"
#include "netlist/optimize.h"
#include "netlist/profiles.h"
#include "netlist/simd.h"
#include "runtime/jsonl.h"

namespace {

using Clock = std::chrono::steady_clock;
using fl::netlist::GateId;
using fl::netlist::Word;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ProfileResult {
  std::string name;
  std::size_t gates = 0;
  std::size_t gates_after_opt = 0;
  std::size_t key_bits = 0;
  double gen_s = 0.0;
  double graph_build_s = 0.0;
  double graph_requery_s = 0.0;
  double optimize_s = 0.0;
  fl::netlist::OptimizeStats opt_stats;
  // Throughput suite (min wall over --repeat runs).
  std::size_t patterns = 0;
  double base_wall_s = 0.0;
  double wide_wall_s = 0.0;
  double base_patterns_per_s = 0.0;
  double wide_patterns_per_s = 0.0;
  double speedup = 0.0;
  bool match_ok = false;       // wide outputs == legacy outputs
  bool accounting_ok = false;  // oracle charged exactly the patterns run
  // Lock + bounded attack + verify. The attack runs twice over the same
  // lock: once with the legacy full encoding (no preprocessing) and once
  // with the key-cone encoding + CNF preprocessing, so the JSONL carries a
  // direct clauses-per-iteration comparison.
  double lock_s = 0.0;
  std::string attack_status;       // cone leg (the production default)
  std::uint64_t attack_iterations = 0;
  std::uint64_t attack_queries = 0;
  double attack_wall_s = 0.0;      // cone leg
  double legacy_attack_wall_s = 0.0;
  std::string legacy_attack_status;
  // Clauses *added* per DIP iteration — the per-iteration CNF growth the
  // issue's acceptance is defined over. The legacy leg re-folds two full
  // circuit copies per DIP; the cone leg sweeps the fixed region with the
  // SIMD simulator and only emits the key-dependent residue that reaches a
  // symbolic output pin. Base miter sizes are reported separately.
  double legacy_clauses_per_iter = 0.0;
  double cone_clauses_per_iter = 0.0;
  double clause_reduction = 0.0;   // legacy / cone
  std::size_t legacy_base_clauses = 0;
  std::size_t cone_base_clauses = 0;
  double legacy_encode_s_per_iter = 0.0;
  double cone_encode_s_per_iter = 0.0;
  double cone_preprocess_s = 0.0;
  std::size_t pp_eliminated_vars = 0;
  bool keys_agree = false;   // both legs recover a verifying key
  bool encode_ok = false;    // cone leg's clause load never exceeds legacy's
  bool verify_ok = false;
  double verify_s = 0.0;
  double total_wall_s = 0.0;
};

double per_iter(long long added, std::uint64_t iters) {
  return static_cast<double>(added) /
         static_cast<double>(std::max<std::uint64_t>(iters, 1));
}

// Legacy-vs-wide oracle simulation throughput over the same random pattern
// matrix. The legacy path is the pre-arena behavior: one 64-pattern run()
// per word with a fresh value vector each call.
void run_throughput(const fl::netlist::Netlist& original, std::size_t n_words,
                    int repeat, ProfileResult& r) {
  const std::size_t n_in = original.num_inputs();
  const std::size_t n_out = original.num_outputs();
  std::mt19937_64 rng(0xBE7C4ull);
  std::vector<Word> inputs(n_in * n_words);
  for (Word& w : inputs) w = rng();

  const fl::attacks::Oracle oracle(original);
  std::vector<Word> base_out(n_out * n_words);
  std::vector<Word> wide_out(n_out * n_words);
  r.patterns = n_words * 64;
  r.base_wall_s = 1e100;
  r.wide_wall_s = 1e100;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto base_start = Clock::now();
    std::vector<Word> in_w(n_in);
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_in; ++i) in_w[i] = inputs[i * n_words + w];
      const std::vector<Word> out = oracle.query_words(in_w, 64);
      for (std::size_t o = 0; o < n_out; ++o) base_out[o * n_words + w] = out[o];
    }
    r.base_wall_s = std::min(r.base_wall_s, seconds_since(base_start));

    const auto wide_start = Clock::now();
    oracle.query_batch(inputs, n_words, n_words * 64, wide_out);
    r.wide_wall_s = std::min(r.wide_wall_s, seconds_since(wide_start));
  }
  r.base_patterns_per_s =
      r.base_wall_s > 0.0 ? static_cast<double>(r.patterns) / r.base_wall_s : 0.0;
  r.wide_patterns_per_s =
      r.wide_wall_s > 0.0 ? static_cast<double>(r.patterns) / r.wide_wall_s : 0.0;
  r.speedup = r.base_wall_s > 0.0 && r.wide_wall_s > 0.0
                  ? r.base_wall_s / r.wide_wall_s
                  : 0.0;
  r.match_ok = (base_out == wide_out);
  // Every repetition charged n_words*64 on each path; nothing more, nothing
  // less — partial or double charging shows up here immediately.
  const std::uint64_t expected =
      2ull * static_cast<std::uint64_t>(repeat) * n_words * 64;
  r.accounting_ok = (oracle.num_queries() == expected);
}

ProfileResult run_profile(const fl::netlist::BenchmarkProfile& profile,
                          std::size_t n_words, int repeat,
                          std::uint64_t attack_iters) {
  ProfileResult r;
  r.name = profile.name;
  const auto total_start = Clock::now();

  auto start = Clock::now();
  const fl::netlist::Netlist original = fl::netlist::make_circuit(profile, 1);
  r.gen_s = seconds_since(start);
  r.gates = original.num_gates();

  // Cold graph-cache build (one Kahn + fanout CSR + levels), then the
  // cached re-query cost.
  start = Clock::now();
  (void)original.topo_span();
  (void)original.levels_span();
  (void)original.fanout(0);
  r.graph_build_s = seconds_since(start);
  start = Clock::now();
  for (int i = 0; i < 1000; ++i) (void)original.topo_span();
  r.graph_requery_s = seconds_since(start) / 1000.0;

  start = Clock::now();
  const fl::netlist::Netlist optimized =
      fl::netlist::optimize(original, &r.opt_stats);
  r.optimize_s = seconds_since(start);
  r.gates_after_opt = optimized.num_gates();

  run_throughput(original, n_words, repeat, r);

  start = Clock::now();
  fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
      {16}, fl::core::ClnTopology::kShuffleBlocking,
      fl::core::CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.5);
  config.seed = 7;
  const fl::core::LockedCircuit locked = fl::core::full_lock(original, config);
  r.lock_s = seconds_since(start);
  r.key_bits = locked.correct_key.size();

  // Iteration-bounded attack: enough to prove the DIP loop (miter CNF,
  // oracle queries, key extraction) runs at this scale, deterministic
  // because the bound — not the clock — ends it. Two legs over the same
  // lock: legacy full encoding vs key-cone encoding + preprocessing.
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = fl::bench::env_double("FULLLOCK_TIMEOUT_S", 600.0);
  options.max_iterations = attack_iters;

  fl::attacks::AttackOptions legacy_options = options;
  legacy_options.encode_mode = fl::attacks::EncodeMode::kFull;
  legacy_options.preprocess = false;
  start = Clock::now();
  const fl::attacks::AttackResult legacy =
      fl::attacks::SatAttack(legacy_options).run(locked, oracle);
  r.legacy_attack_wall_s = seconds_since(start);
  r.legacy_attack_status = fl::attacks::to_string(legacy.status);

  fl::attacks::AttackOptions cone_options = options;
  cone_options.encode_mode = fl::attacks::EncodeMode::kCone;
  start = Clock::now();
  const fl::attacks::AttackResult attack =
      fl::attacks::SatAttack(cone_options).run(locked, oracle);
  r.attack_wall_s = seconds_since(start);
  r.attack_status = fl::attacks::to_string(attack.status);
  r.attack_iterations = attack.iterations;
  r.attack_queries = attack.oracle_queries;

  r.legacy_base_clauses = legacy.base_clauses;
  r.cone_base_clauses = attack.base_clauses;
  r.legacy_clauses_per_iter = per_iter(legacy.clauses_added, legacy.iterations);
  r.cone_clauses_per_iter = per_iter(attack.clauses_added, attack.iterations);
  r.clause_reduction = r.cone_clauses_per_iter > 0.0
                           ? r.legacy_clauses_per_iter / r.cone_clauses_per_iter
                           : 0.0;
  const auto iters_div = [](double s, std::uint64_t iters) {
    return s / static_cast<double>(std::max<std::uint64_t>(iters, 1));
  };
  r.legacy_encode_s_per_iter =
      iters_div(legacy.encode_seconds, legacy.iterations);
  r.cone_encode_s_per_iter = iters_div(attack.encode_seconds, attack.iterations);
  r.cone_preprocess_s = attack.preprocess.preprocess_s;
  r.pp_eliminated_vars = attack.preprocess.eliminated_vars;
  // Regression gate: the cone encoding must never carry more clauses per
  // iteration than the legacy shape, and both legs must land on keys that
  // unlock (iteration-bounded runs stop early, so compare via verify).
  r.encode_ok = r.cone_clauses_per_iter <= r.legacy_clauses_per_iter;
  r.keys_agree =
      fl::core::verify_unlocks(original, locked.netlist, legacy.key,
                               /*rounds=*/2, /*seed=*/13,
                               /*also_sat_check=*/false) ==
      fl::core::verify_unlocks(original, locked.netlist, attack.key,
                               /*rounds=*/2, /*seed=*/13,
                               /*also_sat_check=*/false);

  start = Clock::now();
  r.verify_ok = fl::core::verify_unlocks(original, locked.netlist,
                                         locked.correct_key, /*rounds=*/4,
                                         /*seed=*/11, /*also_sat_check=*/false);
  r.verify_s = seconds_since(start);
  r.total_wall_s = seconds_since(total_start);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool smoke = false;
    std::string out_path = "BENCH_netlist.json";
    int repeat = 3;
    std::uint64_t attack_iters = 2;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke = true;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
        repeat = std::max(1, std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--attack-iters") == 0 && i + 1 < argc) {
        attack_iters =
            static_cast<std::uint64_t>(std::max(1, std::atoi(argv[++i])));
      } else {
        std::fprintf(stderr,
                     "usage: bench_netlist [--smoke] [--out PATH] [--repeat N] "
                     "[--attack-iters N]\n");
        return 1;
      }
    }

    std::vector<std::string> profile_names;
    if (smoke) {
      profile_names = {"synth64k"};
    } else {
      for (const auto& p : fl::netlist::scaled_profiles()) {
        profile_names.push_back(p.name);
      }
    }
    const std::size_t n_words = smoke ? 16 : 64;
    if (smoke) repeat = 1;

    std::vector<ProfileResult> results;
    for (const std::string& name : profile_names) {
      const auto profile = fl::netlist::find_profile(name);
      results.push_back(run_profile(*profile, n_words, repeat, attack_iters));
      const ProfileResult& r = results.back();
      std::printf(
          "%-10s %8zu gates  gen %.2fs  graph %.2fs  opt %.2fs  "
          "sim %.2fx (%.0f -> %.0f pat/s)  attack %s/%llu  "
          "clauses/iter %.0f -> %.0f (%.1fx)  verify %s\n",
          r.name.c_str(), r.gates, r.gen_s, r.graph_build_s, r.optimize_s,
          r.speedup, r.base_patterns_per_s, r.wide_patterns_per_s,
          r.attack_status.c_str(),
          static_cast<unsigned long long>(r.attack_iterations),
          r.legacy_clauses_per_iter, r.cone_clauses_per_iter,
          r.clause_reduction, r.verify_ok ? "ok" : "FAIL");
      std::fflush(stdout);
    }

    double log_speedup = 0.0, min_speedup = 1e100;
    double min_clause_reduction = 1e100;
    bool all_ok = true;
    for (const ProfileResult& r : results) {
      log_speedup += std::log(std::max(r.speedup, 1e-9));
      min_speedup = std::min(min_speedup, r.speedup);
      min_clause_reduction = std::min(min_clause_reduction, r.clause_reduction);
      all_ok = all_ok && r.match_ok && r.accounting_ok && r.verify_ok &&
               r.encode_ok && r.keys_agree;
    }
    const double geomean_speedup =
        results.empty()
            ? 0.0
            : std::exp(log_speedup / static_cast<double>(results.size()));

    std::ofstream file = fl::runtime::open_jsonl(out_path);
    fl::runtime::JsonlSink sink(file);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ProfileResult& r = results[i];
      fl::runtime::JsonObject o;
      o.field("bench", "bench_netlist")
          .field("suite", "substrate")
          .field("workload", r.name)
          .field("simd_level", fl::netlist::simd::kSimdLevel)
          .field("gates", r.gates)
          .field("gates_after_opt", r.gates_after_opt)
          .field("strash_merged", r.opt_stats.subexpressions_merged)
          .field("strash_absorptions", r.opt_stats.absorptions_applied)
          .field("strash_xor_cancelled", r.opt_stats.xor_pairs_cancelled)
          .field("patterns", r.patterns)
          .field("match_ok", r.match_ok)
          .field("accounting_ok", r.accounting_ok)
          .field("key_bits", r.key_bits)
          .field("attack_status", r.attack_status)
          .field("legacy_attack_status", r.legacy_attack_status)
          .field("attack_iterations", r.attack_iterations)
          .field("attack_queries", r.attack_queries)
          .field("legacy_base_clauses", r.legacy_base_clauses)
          .field("cone_base_clauses", r.cone_base_clauses)
          .field("legacy_clauses_per_iter", r.legacy_clauses_per_iter)
          .field("cone_clauses_per_iter", r.cone_clauses_per_iter)
          .field("clause_reduction", r.clause_reduction)
          .field("pp_eliminated_vars", r.pp_eliminated_vars)
          .field("encode_ok", r.encode_ok)
          .field("keys_agree", r.keys_agree)
          .field("verify_ok", r.verify_ok)
          .field("speedup", r.speedup)
          .field("gen_s", r.gen_s)
          .field("graph_build_s", r.graph_build_s)
          .field("graph_requery_s", r.graph_requery_s)
          .field("optimize_s", r.optimize_s)
          .field("base_wall_s", r.base_wall_s)
          .field("wide_wall_s", r.wide_wall_s)
          .field("base_patterns_per_s", r.base_patterns_per_s)
          .field("wide_patterns_per_s", r.wide_patterns_per_s)
          .field("lock_s", r.lock_s)
          .field("attack_wall_s", r.attack_wall_s)
          .field("legacy_attack_wall_s", r.legacy_attack_wall_s)
          .field("legacy_encode_per_iter_s", r.legacy_encode_s_per_iter)
          .field("cone_encode_per_iter_s", r.cone_encode_s_per_iter)
          .field("cone_preprocess_s", r.cone_preprocess_s)
          .field("verify_s", r.verify_s)
          .field("total_wall_s", r.total_wall_s);
      sink.write(i, o.str());
    }
    fl::runtime::JsonObject summary;
    summary.field("bench", "bench_netlist")
        .field("suite", "summary")
        .field("profiles", results.size())
        .field("smoke", smoke)
        .field("simd_level", fl::netlist::simd::kSimdLevel)
        .field("all_checks_ok", all_ok)
        .field("min_speedup", min_speedup)
        .field("geomean_speedup", geomean_speedup)
        .field("min_clause_reduction", min_clause_reduction)
        .field("attack_iters", attack_iters);
    sink.write_unordered(summary.str());
    sink.flush();
    std::printf(
        "\nsimd level %d, geomean sim speedup %.2fx (min %.2fx), "
        "min clause reduction %.1fx -> %s\n",
        fl::netlist::simd::kSimdLevel, geomean_speedup, min_speedup,
        min_clause_reduction, out_path.c_str());
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
