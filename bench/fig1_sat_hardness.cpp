// Figure 1: median number of recursive DPLL calls for random 3-SAT as the
// clauses-to-variables ratio sweeps 2.0 .. 8.0.
//
// Expected shape: easy when under-constrained (< 3) or over-constrained
// (> 6), a hardness peak near ratio 4.3 — the distribution Full-Lock's CLN
// is engineered to land in (§3).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "sat/dpll.h"
#include "sat/ksat.h"

namespace {

using fl::bench::TablePrinter;

struct RatioResult {
  std::uint64_t median_calls = 0;
  std::uint64_t max_calls = 0;
  double sat_fraction = 0.0;
};
std::map<int, RatioResult> g_results;  // key: ratio * 10

int num_vars() { return fl::bench::quick_mode() ? 24 : 40; }
int num_seeds() { return fl::bench::quick_mode() ? 5 : 9; }

void run_ratio(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0)) / 10.0;
  const int n = num_vars();
  RatioResult result;
  for (auto _ : state) {
    std::vector<std::uint64_t> calls;
    int sat_count = 0;
    for (int seed = 0; seed < num_seeds(); ++seed) {
      fl::sat::KSatConfig config;
      config.num_vars = n;
      config.num_clauses = std::max(1, static_cast<int>(n * ratio));
      config.k = 3;
      config.seed = 7000 + seed;
      const fl::sat::DpllResult r =
          fl::sat::Dpll().solve(fl::sat::random_ksat(config));
      calls.push_back(r.recursive_calls);
      sat_count += r.satisfiable ? 1 : 0;
    }
    std::sort(calls.begin(), calls.end());
    result.median_calls = calls[calls.size() / 2];
    result.max_calls = calls.back();
    result.sat_fraction = static_cast<double>(sat_count) / num_seeds();
  }
  state.counters["median_dpll_calls"] =
      static_cast<double>(result.median_calls);
  state.counters["sat_fraction"] = result.sat_fraction;
  g_results[state.range(0)] = result;
}

void print_table() {
  TablePrinter table("Fig. 1 — median recursive DPLL calls vs clause/var "
                     "ratio (random 3-SAT, n=" +
                     std::to_string(num_vars()) + ")");
  table.row({"ratio", "median_calls", "max_calls", "sat_frac"});
  for (const auto& [ratio10, r] : g_results) {
    char ratio_s[16];
    std::snprintf(ratio_s, sizeof(ratio_s), "%.1f", ratio10 / 10.0);
    table.row({ratio_s, std::to_string(r.median_calls),
               std::to_string(r.max_calls),
               std::to_string(r.sat_fraction)});
  }
  std::printf("(paper: hardness peak at ratio ~4.3, easy below 3 and "
              "above 6)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (int ratio10 = 20; ratio10 <= 80; ratio10 += 5) {
    benchmark::RegisterBenchmark(
        ("fig1/ratio=" + std::to_string(ratio10 / 10.0).substr(0, 3)).c_str(),
        run_ratio)
        ->Arg(ratio10)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
