// Figure 1: median number of recursive DPLL calls for random 3-SAT as the
// clauses-to-variables ratio sweeps 2.0 .. 8.0.
//
// Expected shape: easy when under-constrained (< 3) or over-constrained
// (> 6), a hardness peak near ratio 4.3 — the distribution Full-Lock's CLN
// is engineered to land in (§3).
//
// The grid is one cell per (ratio, seed-index) instance, fanned out over
// the shared worker pool (--jobs N / FL_JOBS); the table aggregates the
// per-instance results per ratio. --jsonl PATH / FL_JSONL logs each
// instance individually and durably; an interrupted sweep continues with
// --resume (see EXPERIMENTS.md).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"
#include "runtime/seed.h"
#include "runtime/sweep.h"
#include "sat/dpll.h"
#include "sat/ksat.h"

namespace {

using fl::bench::TablePrinter;

int num_vars() { return fl::bench::quick_mode() ? 24 : 40; }
int num_seeds() { return fl::bench::quick_mode() ? 5 : 9; }

struct Cell {
  int ratio10;
  int seed_index;
  std::uint64_t seed;
};

struct CellResult {
  std::uint64_t recursive_calls = 0;
  bool satisfiable = false;
};

CellResult run_cell(const Cell& cell) {
  const int n = num_vars();
  fl::sat::KSatConfig config;
  config.num_vars = n;
  config.num_clauses = std::max(1, static_cast<int>(n * cell.ratio10 / 10.0));
  config.k = 3;
  config.seed = cell.seed;
  const fl::sat::DpllResult r =
      fl::sat::Dpll().solve(fl::sat::random_ksat(config));
  return {r.recursive_calls, r.satisfiable};
}

void print_table(const std::vector<Cell>& grid,
                 const std::vector<CellResult>& results) {
  TablePrinter table("Fig. 1 — median recursive DPLL calls vs clause/var "
                     "ratio (random 3-SAT, n=" +
                     std::to_string(num_vars()) + ")");
  table.row({"ratio", "median_calls", "max_calls", "sat_frac"});
  for (std::size_t i = 0; i < grid.size();) {
    const int ratio10 = grid[i].ratio10;
    std::vector<std::uint64_t> calls;
    int sat_count = 0;
    for (; i < grid.size() && grid[i].ratio10 == ratio10; ++i) {
      calls.push_back(results[i].recursive_calls);
      sat_count += results[i].satisfiable ? 1 : 0;
    }
    std::sort(calls.begin(), calls.end());
    char ratio_s[16];
    std::snprintf(ratio_s, sizeof(ratio_s), "%.1f", ratio10 / 10.0);
    table.row({ratio_s, std::to_string(calls[calls.size() / 2]),
               std::to_string(calls.back()),
               std::to_string(static_cast<double>(sat_count) /
                              static_cast<double>(calls.size()))});
  }
  std::printf("(paper: hardness peak at ratio ~4.3, easy below 3 and "
              "above 6)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const fl::runtime::RunnerArgs run_args =
        fl::runtime::parse_runner_args(argc, argv);
    const std::uint64_t base = fl::bench::base_seed(7000);

    std::vector<Cell> grid;
    for (int ratio10 = 20; ratio10 <= 80; ratio10 += 5) {
      for (int s = 0; s < num_seeds(); ++s) {
        grid.push_back({ratio10, s,
                        fl::runtime::derive_seed(
                            base, {static_cast<std::uint64_t>(ratio10),
                                   static_cast<std::uint64_t>(s)})});
      }
    }
    std::vector<CellResult> results(grid.size());

    fl::runtime::SweepSession session("fig1", grid.size(), base, run_args);
    const auto record_base = [&](std::size_t i) {
      fl::runtime::JsonObject o;
      o.field("cell", i)
          .field("bench", "fig1")
          .field("ratio", grid[i].ratio10 / 10.0)
          .field("seed_index", grid[i].seed_index)
          .field("seed", grid[i].seed)
          .field("num_vars", num_vars());
      return o;
    };

    std::printf("fig1: %zu instances on %d worker(s), %zu already done\n",
                grid.size(), run_args.jobs, session.num_resumed());
    const fl::runtime::GridReport report = fl::runtime::run_grid(
        grid.size(), session.grid_config(),
        [&](const fl::runtime::CellContext& ctx) {
          const std::size_t i = ctx.index;
          results[i] = run_cell(grid[i]);
          // DPLL has no interrupt hook; treat a cell that finished after
          // the signal arrived as interrupted so no record is written and
          // --resume re-runs it.
          if (ctx.interrupt != nullptr &&
              ctx.interrupt->load(std::memory_order_relaxed)) {
            session.note_interrupted(i);
            return;
          }
          if (session.sink() != nullptr) {
            fl::runtime::JsonObject o = record_base(i);
            o.field("recursive_calls", results[i].recursive_calls)
                .field("satisfiable", results[i].satisfiable);
            session.sink()->write(i, o.str());
          }
        });

    print_table(grid, results);
    return session.finish(report, record_base);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
