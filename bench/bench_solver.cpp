// Solver microbenchmark: the DIP-miter hot path (Table 2 CLN attacks) and
// raw CDCL throughput on phase-transition random 3-SAT (m/n = 4.26).
//
// Emits one JSONL record per workload plus a trailing summary record to
// BENCH_solver.json (--out PATH), so the solver's perf trajectory is
// recorded per PR (the sanitizer CI uploads the --smoke variant as an
// artifact). Wall-clock fields carry the usual `_s` suffix; everything
// else is deterministic, so two runs of the same binary diff clean modulo
// `_s` fields.
//
// Flags:
//   --smoke       tiny workload set for CI (seconds, not minutes)
//   --out PATH    output file (default BENCH_solver.json)
//   --repeat N    timing repetitions per workload, min is reported (default 3)
//   --threads K   parallel-attack comparison: each CLN miter runs with one
//                 thread and then with K threads in race, share and cubes
//                 mode; records carry threads/par_mode/speedup columns and
//                 the ksat suite is skipped (schema in EXPERIMENTS.md)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "attacks/oracle.h"
#include "attacks/sat_attack.h"
#include "bench/bench_util.h"
#include "core/full_lock.h"
#include "runtime/jsonl.h"
#include "sat/ksat.h"
#include "sat/solver.h"

namespace {

using Clock = std::chrono::steady_clock;
using fl::core::ClnTopology;

struct WorkloadResult {
  std::string suite;   // "cln_miter" | "ksat"
  std::string name;
  double wall_s = 0.0;  // min over repetitions
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  fl::sat::SolverStats stats;  // full stats of the timed run
  std::string status;
  // Parallel-comparison columns (--threads); sequential rows keep the
  // defaults so old and new records stay schema-compatible.
  int threads = 1;
  std::string par_mode = "none";
  double speedup = 0.0;  // sequential wall / this wall, 0 when n/a
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One Table 2 cell: CLN-only lock over the identity circuit, full
// oracle-guided attack. The DIP loop is exactly the solver workload the
// paper's tables are bounded by.
WorkloadResult run_cln_miter(ClnTopology topo, int n, int repeat,
                             int threads = 1,
                             fl::sat::ParMode mode = fl::sat::ParMode::kRace) {
  WorkloadResult r;
  r.suite = "cln_miter";
  r.name = std::string(topo == ClnTopology::kShuffleBlocking ? "blocking"
                                                             : "nonblocking") +
           "_n" + std::to_string(n);
  r.threads = std::max(1, threads);
  if (r.threads > 1) {
    r.par_mode = fl::sat::to_string(mode);
    r.name += std::string("_") + r.par_mode + "_t" + std::to_string(r.threads);
  }
  const fl::netlist::Netlist original = fl::bench::identity_circuit(n);
  fl::core::FullLockConfig config = fl::core::FullLockConfig::with_plrs(
      {n}, topo, fl::core::CycleMode::kAvoid,
      /*twist_luts=*/false, /*negate_probability=*/0.5);
  config.seed = 7;
  const fl::core::LockedCircuit locked = fl::core::full_lock(original, config);
  const fl::attacks::Oracle oracle(original);
  fl::attacks::AttackOptions options;
  options.timeout_s = fl::bench::env_double("FULLLOCK_TIMEOUT_S", 120.0);
  options.portfolio = r.threads > 1 ? r.threads : 0;
  options.par_mode = mode;
  r.wall_s = 1e100;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto start = Clock::now();
    const fl::attacks::AttackResult attack =
        fl::attacks::SatAttack(options).run(locked, oracle);
    const double wall = seconds_since(start);
    if (wall < r.wall_s) {
      r.wall_s = wall;
      r.stats = attack.solver_stats;
      r.conflicts = attack.solver_stats.conflicts;
      r.decisions = attack.solver_stats.decisions;
      r.propagations = attack.solver_stats.propagations;
      r.status = fl::attacks::to_string(attack.status);
    }
  }
  return r;
}

// Raw CDCL run on a fixed-length random 3-SAT instance at the hardness
// peak (m/n = 4.26).
WorkloadResult run_ksat(int num_vars, std::uint64_t seed, int repeat) {
  WorkloadResult r;
  r.suite = "ksat";
  r.name = "ksat_n" + std::to_string(num_vars) + "_s" + std::to_string(seed);
  fl::sat::KSatConfig config;
  config.num_vars = num_vars;
  config.num_clauses = static_cast<int>(num_vars * 4.26);
  config.seed = seed;
  const fl::sat::Cnf cnf = fl::sat::random_ksat(config);
  r.wall_s = 1e100;
  for (int rep = 0; rep < repeat; ++rep) {
    fl::sat::Solver solver;
    for (int v = 0; v < cnf.num_vars; ++v) solver.new_var();
    for (const fl::sat::Clause& c : cnf.clauses) solver.add_clause(c);
    const auto start = Clock::now();
    const fl::sat::LBool result = solver.solve();
    const double wall = seconds_since(start);
    if (wall < r.wall_s) {
      r.wall_s = wall;
      r.stats = solver.stats();
      r.conflicts = solver.stats().conflicts;
      r.decisions = solver.stats().decisions;
      r.propagations = solver.stats().propagations;
      r.status = result == fl::sat::LBool::kTrue    ? "sat"
                 : result == fl::sat::LBool::kFalse ? "unsat"
                                                    : "undef";
    }
  }
  return r;
}

void append_solver_stat_fields(fl::runtime::JsonObject& o,
                               const fl::sat::SolverStats& s) {
  o.field("decisions", s.decisions)
      .field("propagations", s.propagations)
      .field("binary_propagations", s.binary_propagations)
      .field("conflicts", s.conflicts)
      .field("restarts", s.restarts)
      .field("learned_clauses", s.learned_clauses)
      .field("learned_binary", s.learned_binary)
      .field("mean_lbd", s.learned_clauses > 0
                             ? static_cast<double>(s.lbd_sum) /
                                   static_cast<double>(s.learned_clauses)
                             : 0.0)
      .field("glue_learned", s.glue_learned)
      .field("max_lbd", s.max_lbd)
      .field("promoted_clauses", s.promoted_clauses)
      .field("removed_clauses", s.removed_clauses)
      .field("db_size_after_reduce", s.db_size_after_reduce)
      .field("simplify_removed_clauses", s.simplify_removed_clauses)
      .field("simplify_removed_literals", s.simplify_removed_literals);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool smoke = false;
    std::string out_path = "BENCH_solver.json";
    int repeat = 3;
    int threads = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke = true;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
        repeat = std::max(1, std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads = std::max(1, std::atoi(argv[++i]));
      } else {
        std::fprintf(stderr,
                     "usage: bench_solver [--smoke] [--out PATH] [--repeat N] "
                     "[--threads K]\n");
        return 1;
      }
    }

    std::vector<WorkloadResult> results;
    // Table 2 CLN miters: sizes on the steep part of the hardness curve but
    // well clear of the timeout, so wall time measures solver speed rather
    // than the TO ceiling.
    struct MiterCell { ClnTopology topo; int n; };
    const std::vector<MiterCell> miters =
        smoke ? std::vector<MiterCell>{{ClnTopology::kShuffleBlocking, 16},
                                       {ClnTopology::kShuffleBlocking, 32},
                                       {ClnTopology::kBanyanNonBlocking, 8},
                                       {ClnTopology::kBanyanNonBlocking, 16}}
              : std::vector<MiterCell>{{ClnTopology::kShuffleBlocking, 32},
                                       {ClnTopology::kShuffleBlocking, 64},
                                       {ClnTopology::kShuffleBlocking, 128},
                                       {ClnTopology::kBanyanNonBlocking, 16},
                                       {ClnTopology::kBanyanNonBlocking, 32}};
    for (const MiterCell& m : miters) {
      results.push_back(run_cln_miter(m.topo, m.n, smoke ? 1 : repeat));
      std::printf("%-32s %10.4f s  %12llu conflicts\n",
                  results.back().name.c_str(), results.back().wall_s,
                  static_cast<unsigned long long>(results.back().conflicts));
      std::fflush(stdout);
      if (threads > 1) {
        const double base_wall = results.back().wall_s;
        for (const fl::sat::ParMode mode :
             {fl::sat::ParMode::kRace, fl::sat::ParMode::kShare,
              fl::sat::ParMode::kCubes}) {
          results.push_back(
              run_cln_miter(m.topo, m.n, smoke ? 1 : repeat, threads, mode));
          WorkloadResult& r = results.back();
          r.speedup = r.wall_s > 0.0 ? base_wall / r.wall_s : 0.0;
          std::printf("%-32s %10.4f s  %12llu conflicts  (%.2fx)\n",
                      r.name.c_str(), r.wall_s,
                      static_cast<unsigned long long>(r.conflicts), r.speedup);
          std::fflush(stdout);
        }
      }
    }
    // Phase-transition 3-SAT (m/n = 4.26), mixed SAT/UNSAT outcomes. The
    // suite measures raw sequential CDCL throughput, so the parallel
    // comparison (--threads) skips it.
    struct KsatCell { int n; std::uint64_t seed; };
    const std::vector<KsatCell> ksats =
        threads > 1 ? std::vector<KsatCell>{}
        : smoke     ? std::vector<KsatCell>{{100, 1}, {100, 2}, {125, 1}}
                    : std::vector<KsatCell>{{150, 1}, {150, 2}, {175, 1},
                                            {175, 2}, {200, 1}, {200, 2},
                                            {225, 1}, {225, 2}};
    for (const KsatCell& k : ksats) {
      results.push_back(run_ksat(k.n, k.seed, repeat));
      std::printf("%-32s %10.4f s  %12llu conflicts  (%s)\n",
                  results.back().name.c_str(), results.back().wall_s,
                  static_cast<unsigned long long>(results.back().conflicts),
                  results.back().status.c_str());
      std::fflush(stdout);
    }

    // Summary: geomean wall time and conflict throughput across workloads.
    double log_wall = 0.0, log_cps = 0.0, total_wall = 0.0;
    std::size_t cps_samples = 0;
    for (const WorkloadResult& r : results) {
      log_wall += std::log(std::max(r.wall_s, 1e-9));
      total_wall += r.wall_s;
      if (r.conflicts > 0 && r.wall_s > 0.0) {
        log_cps += std::log(static_cast<double>(r.conflicts) / r.wall_s);
        ++cps_samples;
      }
    }
    const double geomean_wall =
        std::exp(log_wall / static_cast<double>(results.size()));
    const double geomean_cps =
        cps_samples > 0 ? std::exp(log_cps / static_cast<double>(cps_samples))
                        : 0.0;

    std::ofstream file = fl::runtime::open_jsonl(out_path);
    fl::runtime::JsonlSink sink(file);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      fl::runtime::JsonObject o;
      o.field("bench", "bench_solver")
          .field("suite", r.suite)
          .field("workload", r.name)
          .field("status", r.status);
      append_solver_stat_fields(o, r.stats);
      o.field("conflicts_per_s",
              r.wall_s > 0.0 ? static_cast<double>(r.conflicts) / r.wall_s
                             : 0.0)
          .field("wall_s", r.wall_s);
      if (r.threads > 1) {
        o.field("threads", r.threads)
            .field("par_mode", r.par_mode)
            .field("speedup", r.speedup)
            .field("exported_clauses", r.stats.exported_clauses)
            .field("imported_clauses", r.stats.imported_clauses);
      }
      sink.write(i, o.str());
    }
    fl::runtime::JsonObject summary;
    summary.field("bench", "bench_solver")
        .field("suite", "summary")
        .field("workloads", results.size())
        .field("smoke", smoke)
        .field("threads", threads)
        .field("geomean_conflicts_per_s", geomean_cps)
        .field("geomean_wall_s", geomean_wall)
        .field("total_wall_s", total_wall);
    sink.write_unordered(summary.str());
    sink.flush();
    std::printf("\ngeomean wall %.4f s, geomean %.0f conflicts/s -> %s\n",
                geomean_wall, geomean_cps, out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
