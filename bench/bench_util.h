// Shared helpers for the paper-reproduction bench binaries.
//
// Environment knobs (all benches):
//   FULLLOCK_TIMEOUT_S  attack timeout in seconds (default 10; the paper
//                       used 2e6 s on a Xeon E5-2670 — see DESIGN.md §2 for
//                       the scaling rationale)
//   FULLLOCK_QUICK      if set, shrink sweeps for smoke-testing
//   FULLLOCK_SEED       base seed the per-cell seeds are derived from
//   FL_JOBS             worker threads for sweep grids (flag: --jobs N)
//   FL_JSONL            JSONL result file (flag: --jsonl PATH)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "attacks/sat_attack.h"
#include "netlist/netlist.h"
#include "runtime/jsonl.h"
#include "runtime/runner.h"

namespace fl::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline bool env_flag(const char* name) { return std::getenv(name) != nullptr; }

inline double attack_timeout_s() { return env_double("FULLLOCK_TIMEOUT_S", 10.0); }
inline bool quick_mode() { return env_flag("FULLLOCK_QUICK"); }
inline std::uint64_t base_seed(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(env_int("FULLLOCK_SEED",
                                            static_cast<int>(fallback)));
}

// The attack-stats block of the JSONL schema (see EXPERIMENTS.md): the
// deterministic fields first, then the wall-clock fields, whose `_s` suffix
// marks them as the only fields allowed to differ between two runs of the
// same seed grid.
inline void append_attack_fields(runtime::JsonObject& o,
                                 const attacks::AttackResult& r) {
  o.field("status", attacks::to_string(r.status))
      .field("stop_reason", sat::to_string(r.stop_reason))
      .field("iterations", r.iterations)
      .field("mean_clause_var_ratio", r.mean_clause_var_ratio)
      .field("oracle_queries", r.oracle_queries)
      .field("banned_keys", r.banned_keys)
      .field("decisions", r.solver_stats.decisions)
      .field("propagations", r.solver_stats.propagations)
      .field("binary_propagations", r.solver_stats.binary_propagations)
      .field("conflicts", r.solver_stats.conflicts)
      .field("restarts", r.solver_stats.restarts)
      .field("learned_clauses", r.solver_stats.learned_clauses)
      .field("learned_binary", r.solver_stats.learned_binary)
      .field("glue_learned", r.solver_stats.glue_learned)
      .field("max_lbd", r.solver_stats.max_lbd)
      .field("promoted_clauses", r.solver_stats.promoted_clauses)
      .field("removed_clauses", r.solver_stats.removed_clauses)
      .field("db_size_after_reduce", r.solver_stats.db_size_after_reduce)
      .field("simplify_removed_clauses",
             r.solver_stats.simplify_removed_clauses)
      .field("cone_encoding", r.cone_encoding)
      .field("base_clauses", r.base_clauses)
      .field("base_vars", r.base_vars)
      .field("clauses_added", r.clauses_added)
      .field("vars_added", r.vars_added)
      .field("pp_ran", r.preprocess.ran)
      .field("pp_input_clauses", r.preprocess.input_clauses)
      .field("pp_output_clauses", r.preprocess.output_clauses)
      .field("pp_fixed_vars", r.preprocess.fixed_vars)
      .field("pp_eliminated_vars", r.preprocess.eliminated_vars)
      .field("pp_subsumed_clauses", r.preprocess.subsumed_clauses)
      .field("pp_strengthened_literals", r.preprocess.strengthened_literals)
      .field("mean_iteration_s", r.mean_iteration_seconds)
      .field("encode_s", r.encode_seconds)
      .field("preprocess_s", r.preprocess.preprocess_s)
      .field("wall_s", r.seconds);
}

// Optional per-DIP-iteration trace for a whole sweep (--trace PATH /
// FL_TRACE): one JsonlTraceSink shared by every cell, each record stamped
// with its grid cell index (the sink is thread-safe, so parallel cells may
// interleave records). Construct once in main, wire() per cell.
struct SweepTrace {
  explicit SweepTrace(const runtime::RunnerArgs& run_args) {
    if (!run_args.trace_path.empty()) {
      file.emplace(runtime::open_jsonl(run_args.trace_path));
      sink.emplace(*file);
    }
  }
  void wire(attacks::AttackOptions& options, std::size_t cell) {
    if (sink.has_value()) {
      options.trace = &*sink;
      options.trace_cell = static_cast<long long>(cell);
    }
  }

  std::optional<std::ofstream> file;
  std::optional<attacks::JsonlTraceSink> sink;
};

// N-wire identity circuit (the Table 2 harness: a CLN locked over plain
// wires, so the oracle is the identity function).
inline netlist::Netlist identity_circuit(int n) {
  netlist::Netlist net("identity" + std::to_string(n));
  for (int i = 0; i < n; ++i) net.add_input("x" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    const netlist::GateId b =
        net.add_gate(netlist::GateType::kBuf, {static_cast<netlist::GateId>(i)});
    net.mark_output(b, "y" + std::to_string(i));
  }
  return net;
}

// "TO" rendering used by the paper's tables.
inline std::string fmt_time_or_to(bool timed_out, double seconds) {
  if (timed_out) return "TO";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  return buf;
}

struct TablePrinter {
  explicit TablePrinter(std::string title) {
    std::printf("\n=== %s ===\n", title.c_str());
  }
  void row(const std::vector<std::string>& cells, int width = 12) {
    for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
    std::printf("\n");
  }
};

}  // namespace fl::bench
